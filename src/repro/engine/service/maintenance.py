"""The maintenance kernel: materialised views kept fresh by delta streams.

:class:`ViewMaintainer` owns the materialised rows of a
:class:`~repro.algebra.views.ViewSet` and updates them from the netted
:class:`~repro.storage.deltas.DeltaStream` of each committed transaction.
Every CQ/UCQ view is compiled **once** (:mod:`repro.exec.delta_compiler`)
into per-relation delta rules; at maintenance time only the lookups are
resolved, against one of three relation states:

* *live* — the post-transaction database (its maintained secondary indexes);
* *pre-transaction* — live minus the net insertions plus the net deletions
  of a changed relation.  Counting maintenance processes the changed
  relations in first-touch order and evaluates not-yet-processed relations
  in their pre-transaction state (the classic telescoping sum
  ``ΔQ = Σ_k Q(R₁ⁿᵉʷ … ΔR_k … R_nᵒˡᵈ)``), which makes multi-relation batches
  exact — no derivation is counted twice or missed;
* *augmented* — live plus the net deletions, the superset DRed uses to
  enumerate every derivation that may have died.

Strategies per view (see :func:`repro.exec.delta_compiler.counting_eligible`):

* ``counting`` — single-CQ views without self-joins keep a
  ``row → derivation count`` multiset; a deletion decrements counts and a
  row leaves the view exactly when its count reaches zero.  No re-derivation
  at all on the common path.
* ``dred`` — self-joins and UCQ views: insertions add the rows derivable
  through the inserted tuples, deletions over-delete candidates
  (semi-joined against the cached rows) and re-derive survivors through the
  compiled support check.
* ``recompute`` — FO views (negation, universal quantification) are
  re-evaluated when a relation they mention changes; deltas of FO views are
  not bounded in general.

:class:`MaintenanceStats`, :class:`ViewDelta` and :class:`MaintenanceReport`
are the accounting surface shared with the deprecated
:mod:`repro.engine.maintenance` shims.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ...algebra.evaluation import evaluate_ucq
from ...algebra.fo import evaluate_fo
from ...algebra.terms import Variable
from ...algebra.views import View, ViewSet
from ...analysis import delta_codegen_eligibility
from ...errors import DeltaCompilationError, SchemaError
from ...exec.cq_compiler import FactsSource, cq_pipeline
from ...exec.delta_compiler import (
    CompiledViewDelta,
    LookupResolver,
    MaintenanceKernels,
    compile_maintenance,
    compile_view_delta,
    counting_eligible,
    metered_resolver,
)
from ...exec.iometer import IOMeter
from ...exec.operators import Project
from ...storage.deltas import DeltaStream
from ...storage.instance import Database


@dataclass
class ViewDelta:
    """Rows added to / removed from one view by a transaction."""

    view: str
    added: frozenset[tuple] = frozenset()
    removed: frozenset[tuple] = frozenset()

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class MaintenanceStats:
    """Work accounting of one maintenance run (or a merged sequence of runs).

    ``delta_queries`` counts compiled delta-rule executions,
    ``support_checks`` the per-row re-derivation probes of the DRed fallback;
    both stay small when the views are selective — the quantity bounded view
    maintenance is about.  Counting-mode deletions never re-derive, so a
    counting view contributes zero support checks.
    """

    updates: int = 0
    delta_queries: int = 0
    support_checks: int = 0
    rows_added: int = 0
    rows_removed: int = 0
    #: Maintenance-tier tally per *touched* view per run:
    #: ``"compiled"`` (generated kernels), ``"interpreted"`` (staged rule
    #: loops) or ``"recompute"`` (FO views).  Untouched views count nowhere.
    tier_runs: dict[str, int] = field(default_factory=dict)

    def merged_with(self, other: "MaintenanceStats") -> "MaintenanceStats":
        merged_tiers = dict(self.tier_runs)
        for tier, count in other.tier_runs.items():
            merged_tiers[tier] = merged_tiers.get(tier, 0) + count
        return MaintenanceStats(
            updates=self.updates + other.updates,
            delta_queries=self.delta_queries + other.delta_queries,
            support_checks=self.support_checks + other.support_checks,
            rows_added=self.rows_added + other.rows_added,
            rows_removed=self.rows_removed + other.rows_removed,
            tier_runs=merged_tiers,
        )


@dataclass
class MaintenanceReport:
    """Outcome of applying one batch through the first-class write path."""

    applied: int
    skipped_inadmissible: int
    inserted: int
    deleted: int
    stats: MaintenanceStats
    view_deltas: list[ViewDelta] = field(default_factory=list)


@dataclass
class MaintenanceExplanation:
    """How one view is maintained right now (the write-side ``explain``).

    ``tier`` is the tier the *next* touching stream will run on:
    ``"compiled"`` once generated kernels exist, ``"recompute"`` for FO
    views, ``"interpreted"`` otherwise.  ``codegen_state`` follows the
    read-side lifecycle vocabulary: ``"pending"`` (still warming up or
    codegen disabled), ``"compiled"``, or ``"ineligible"`` (the delta
    program failed verification or kernel generation — with the first
    diagnostic in ``codegen_reason`` — and stays interpreted forever).
    """

    view: str
    mode: str
    tier: str
    codegen_state: str
    codegen_reason: str
    runs: int
    warmup: int


# --------------------------------------------------------------------------- #
# Lookup resolvers over the three relation states
# --------------------------------------------------------------------------- #


def _index_rows_by_key(
    rows: Sequence[tuple], positions: tuple[int, ...]
) -> dict[tuple, list[tuple]]:
    index: dict[tuple, list[tuple]] = {}
    for row in rows:
        index.setdefault(tuple(row[p] for p in positions), []).append(row)
    return index


class _StateResolvers:
    """Lookup resolvers for one delta stream over one facts source.

    With a ``meter``, every resolver is wrapped by
    :func:`~repro.exec.delta_compiler.metered_resolver` — the single charging
    boundary both maintenance tiers share, so their ``Dξ`` accounting is
    bit-identical.  Without one (the default on the write hot path), the
    resolvers are returned unwrapped and metering costs nothing.
    """

    def __init__(
        self,
        source: FactsSource,
        stream: DeltaStream,
        meter: IOMeter | None = None,
    ) -> None:
        self._source = source
        self._stream = stream
        self._changed = stream.touched
        self._meter = meter

    def _metered(self, resolve: LookupResolver) -> LookupResolver:
        if self._meter is None:
            return resolve
        return metered_resolver(resolve, self._meter)

    def live(self) -> LookupResolver:
        return self._metered(self._source.lookup)

    def pre_transaction(self, unprocessed: frozenset[str]) -> LookupResolver:
        """Changed relations in ``unprocessed`` are served pre-state."""
        source, stream = self._source, self._stream
        rewind = self._changed & unprocessed
        if not rewind:
            return self._metered(source.lookup)

        def resolve(relation: str, positions: tuple[int, ...], arity: int):
            live = source.lookup(relation, positions, arity)
            if relation not in rewind:
                return live
            inserted = set(stream.inserted(relation))
            deleted = _index_rows_by_key(stream.deleted(relation), positions)

            def lookup(key: tuple) -> list[tuple]:
                rows = [row for row in live(key) if row not in inserted]
                rows.extend(deleted.get(key, ()))
                return rows

            return lookup

        return self._metered(resolve)

    def augmented(self) -> LookupResolver:
        """Every changed relation serves live rows plus its net deletions."""
        source, stream = self._source, self._stream
        with_deletions = frozenset(
            name for name in self._changed if stream.deleted(name)
        )
        if not with_deletions:
            return self._metered(source.lookup)

        def resolve(relation: str, positions: tuple[int, ...], arity: int):
            live = source.lookup(relation, positions, arity)
            if relation not in with_deletions:
                return live
            deleted = _index_rows_by_key(stream.deleted(relation), positions)

            def lookup(key: tuple) -> list[tuple]:
                rows = list(live(key))
                rows.extend(deleted.get(key, ()))
                return rows

            return lookup

        return self._metered(resolve)


# --------------------------------------------------------------------------- #
# The maintainer
# --------------------------------------------------------------------------- #


class ViewMaintainer:
    """Materialised view rows maintained from committed delta streams.

    Construction materialises every view (counting views with derivation
    counts); :meth:`apply_stream` folds in the net changes of one
    transaction.  Compilation of the delta programs is lazy — read-only
    services never pay for it.
    """

    def __init__(
        self,
        views: ViewSet | Sequence[View],
        database: Database,
        *,
        subscribe: bool = False,
        allow_counting: bool = True,
        codegen: bool = True,
        codegen_warmup: int = 2,
    ) -> None:
        """With ``subscribe=True`` the maintainer registers itself on the
        database's delta stream and follows every committed transaction on
        its own.  :class:`~repro.engine.service.QueryService` leaves it
        ``False`` and drives :meth:`apply_stream` from its own subscription,
        so one notification updates views, plan cache and backends in order.

        ``allow_counting=False`` forces DRed (set-semantics) maintenance for
        every view.  Counting is exact only when every delivered stream
        reflects *effective* changes — guaranteed for streams built by
        :meth:`Database.apply`, but not for hand-built ones; callers that
        synthesise streams (the deprecated ``IncrementalViewCache`` shim)
        disable counting, since DRed is idempotent under no-op updates.

        ``codegen`` enables the compiled maintenance tier: after a view's
        delta rules have run interpreted ``codegen_warmup`` times, the delta
        program is statically verified
        (:func:`repro.analysis.delta_codegen_eligibility`) and — if eligible —
        compiled into generated nested-loop kernels
        (:func:`repro.exec.delta_compiler.compile_maintenance`) that all
        later touching streams run on.  An ineligible or failing view keeps
        its interpreted rules forever; compilation never surfaces an error
        to a write.
        """
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        self.database = database
        self._allow_counting = allow_counting
        self.codegen = codegen
        self.codegen_warmup = max(0, codegen_warmup)
        self._source = FactsSource(database)
        self._modes: dict[str, str] = {}
        self._rows: dict[str, set[tuple]] = {}
        self._counts: dict[str, dict[tuple, int]] = {}
        self._frozen: dict[str, frozenset[tuple] | None] = {}
        self._compiled: dict[str, CompiledViewDelta] = {}
        self._fo_relations: dict[str, frozenset[str]] = {}
        # Compiled-maintenance lifecycle, per view (same vocabulary as the
        # read-side plan cache): interpreted warmup runs are counted in
        # ``_runs`` while the state is "pending"; the state then moves to
        # "compiled" (kernels in ``_kernels``) or "ineligible" (first
        # diagnostic in ``_codegen_reason``) and never back.
        self._codegen_lock = threading.Lock()
        self._runs: dict[str, int] = {}
        self._codegen_state: dict[str, str] = {}
        self._codegen_reason: dict[str, str] = {}
        self._kernels: dict[str, MaintenanceKernels] = {}
        for view in self.views:
            self._materialise(view)
        if subscribe:
            database.subscribe(self)

    def on_delta(self, stream: DeltaStream) -> None:
        """Delta-observer hook (active when constructed with ``subscribe=True``)."""
        self.apply_stream(stream)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def _materialise(self, view: View) -> None:
        name = view.name
        if view.language in ("CQ", "UCQ"):
            disjuncts = tuple(d.normalize() for d in view.as_ucq().disjuncts)
            if self._allow_counting and counting_eligible(disjuncts):
                self._modes[name] = "counting"
                counts = self._count_derivations(disjuncts[0])
                self._counts[name] = counts
                self._rows[name] = set(counts)
            else:
                self._modes[name] = "dred"
                self._rows[name] = set(evaluate_ucq(view.as_ucq(), self.database))
        else:
            self._modes[name] = "recompute"
            self._fo_relations[name] = view.definition.relation_names
            self._rows[name] = set(self._evaluate_fo(view))
        self._frozen[name] = None

    def _count_derivations(self, disjunct) -> dict[tuple, int]:
        """``head row → number of body valuations`` for one normalised CQ."""
        operator, schema = cq_pipeline(disjunct, self._source)
        position_of = {variable: index for index, variable in enumerate(schema)}
        spec = tuple(
            (position_of[term], None) if isinstance(term, Variable) else (None, term.value)
            for term in disjunct.head
        )

        def mapper(row: tuple, spec=spec) -> tuple:
            return tuple(row[i] if i is not None else v for i, v in spec)

        counts: dict[tuple, int] = {}
        for head_row in Project(operator, mapper=mapper).rows():
            counts[head_row] = counts.get(head_row, 0) + 1
        return counts

    def _evaluate_fo(self, view: View) -> frozenset[tuple]:
        head = [t for t in view.head if isinstance(t, Variable)]
        return frozenset(evaluate_fo(view.as_fo(), self.database.facts, head))

    def _compiled_for(self, view: View) -> CompiledViewDelta:
        compiled = self._compiled.get(view.name)
        if compiled is None:
            disjuncts = tuple(d.normalize() for d in view.as_ucq().disjuncts)
            compiled = compile_view_delta(view.name, disjuncts)
            self._compiled[view.name] = compiled
        return compiled

    def _maintenance_kernels(
        self, name: str, compiled: CompiledViewDelta
    ) -> MaintenanceKernels | None:
        """Warmup→verify→compile lifecycle; ``None`` means run interpreted.

        Warmup runs are counted only for streams that actually touch the
        view, and only while the state is still pending.  Once the warmup is
        spent, the delta program is verified and compiled under the lock
        (double-checked, so concurrent maintainers compile once); failure of
        either step parks the view as ineligible forever.
        """
        if not self.codegen:
            return None
        kernels = self._kernels.get(name)
        if kernels is not None:
            return kernels
        state = self._codegen_state.get(name, "pending")
        if state != "pending":
            return None
        with self._codegen_lock:
            kernels = self._kernels.get(name)
            if kernels is not None:
                return kernels
            if self._codegen_state.get(name, "pending") != "pending":
                return None
            runs = self._runs.get(name, 0)
            if runs < self.codegen_warmup:
                self._runs[name] = runs + 1
                return None
            report = delta_codegen_eligibility(compiled, self.database.schema)
            if not report.ok:
                self._codegen_state[name] = "ineligible"
                first = report.errors[0]
                self._codegen_reason[name] = f"{first.code}: {first.message}"
                return None
            try:
                kernels = compile_maintenance(compiled)
            except DeltaCompilationError as exc:
                self._codegen_state[name] = "ineligible"
                self._codegen_reason[name] = f"delta.compile-error: {exc}"
                return None
            self._kernels[name] = kernels
            self._codegen_state[name] = "compiled"
            return kernels

    def invalidate_compiled(self, view_name: str | None = None) -> None:
        """Drop compiled delta programs and kernels (one view, or all).

        The next touching stream restarts the warmup→verify→compile
        lifecycle from scratch — the hook view eviction/redefinition and the
        differential tests use to force tier transitions.
        """
        with self._codegen_lock:
            names = [self._known(view_name)] if view_name is not None else list(self._rows)
            for name in names:
                self._compiled.pop(name, None)
                self._kernels.pop(name, None)
                self._runs.pop(name, None)
                self._codegen_state.pop(name, None)
                self._codegen_reason.pop(name, None)

    def explain(self, view_name: str) -> MaintenanceExplanation:
        """The maintenance strategy and execution tier of one view."""
        name = self._known(view_name)
        mode = self._modes[name]
        state = self._codegen_state.get(name, "pending")
        if mode == "recompute":
            tier = "recompute"
        elif state == "compiled":
            tier = "compiled"
        else:
            tier = "interpreted"
        return MaintenanceExplanation(
            view=name,
            mode=mode,
            tier=tier,
            codegen_state=state,
            codegen_reason=self._codegen_reason.get(name, ""),
            runs=self._runs.get(name, 0),
            warmup=self.codegen_warmup,
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def _known(self, view_name: str) -> str:
        if view_name not in self._rows:
            raise SchemaError(
                f"maintainer has no view named {view_name!r}; maintained views "
                f"are {sorted(self._rows)}"
            )
        return view_name

    def mode(self, view_name: str) -> str:
        """``"counting"``, ``"dred"`` or ``"recompute"`` for one view."""
        return self._modes[self._known(view_name)]

    @property
    def modes(self) -> Mapping[str, str]:
        return dict(self._modes)

    def rows(self, view_name: str) -> frozenset[tuple]:
        frozen = self._frozen[self._known(view_name)]
        if frozen is None:
            frozen = frozenset(self._rows[view_name])
            self._frozen[view_name] = frozen
        return frozen

    def counts(self, view_name: str) -> Mapping[tuple, int]:
        """Derivation counts of a counting-mode view (read-only)."""
        if self.mode(view_name) != "counting":
            raise SchemaError(
                f"view {view_name!r} is maintained in "
                f"{self._modes[view_name]!r} mode and keeps no derivation counts"
            )
        return dict(self._counts[view_name])

    def compiled_delta(self, view_name: str) -> CompiledViewDelta:
        """The compiled delta program of one CQ/UCQ view (compiled on demand).

        The static checker :func:`repro.analysis.verify_delta_program`
        consumes this.  FO views are maintained by recomputation and have no
        delta program — asking for one raises :class:`SchemaError`.
        """
        if self.mode(view_name) == "recompute":
            raise SchemaError(
                f"view {view_name!r} is an FO view maintained by recomputation; "
                "it has no compiled delta program"
            )
        return self._compiled_for(self.views.view(view_name))

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """The cache in the shape expected by the plan executor/backends.

        Per-view frozen sets are cached and invalidated per transaction, so
        a snapshot after a batch that touched one view re-freezes one view.
        """
        return {name: self.rows(name) for name in self._rows}

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def apply_stream(
        self,
        stream: DeltaStream,
        stats: MaintenanceStats | None = None,
        *,
        meter: IOMeter | None = None,
    ) -> list[ViewDelta]:
        """Fold one committed transaction into every maintained view.

        Must be called *after* the stream's changes reached the database
        (the delta rules read the post-state through the live lookups and
        reconstruct pre-state views from the stream where the telescoping
        requires it).  Returns the per-view row changes, skipping views the
        transaction does not affect.

        With a ``meter``, every delta-rule and support-check probe charges
        its returned rows as ``Dξ`` fetches — identically on both execution
        tiers (see :func:`repro.exec.delta_compiler.metered_resolver`).
        """
        stats = stats if stats is not None else MaintenanceStats()
        stats.updates += stream.applied
        if stream.is_empty:
            return []
        resolvers = _StateResolvers(self._source, stream, meter)
        touched = stream.touched
        tier_runs = stats.tier_runs
        deltas: list[ViewDelta] = []
        for view in self.views:
            mode = self._modes[view.name]
            if mode == "recompute":
                if touched & self._fo_relations[view.name]:
                    delta = self._recompute_fo(view)
                    tier_runs["recompute"] = tier_runs.get("recompute", 0) + 1
                else:
                    delta = ViewDelta(view=view.name)
            else:
                compiled = self._compiled_for(view)
                if not (touched & compiled.relations):
                    delta = ViewDelta(view=view.name)
                else:
                    kernels = self._maintenance_kernels(view.name, compiled)
                    tier = "compiled" if kernels is not None else "interpreted"
                    tier_runs[tier] = tier_runs.get(tier, 0) + 1
                    if mode == "counting":
                        delta = self._apply_counting(
                            view.name, compiled, kernels, stream, resolvers, stats
                        )
                    else:
                        delta = self._apply_dred(
                            view.name, compiled, kernels, stream, resolvers, stats
                        )
            if not delta.is_empty:
                self._frozen[view.name] = None
                deltas.append(delta)
            stats.rows_added += len(delta.added)
            stats.rows_removed += len(delta.removed)
        return deltas

    def _apply_counting(
        self,
        name: str,
        compiled: CompiledViewDelta,
        kernels: MaintenanceKernels | None,
        stream: DeltaStream,
        resolvers: _StateResolvers,
        stats: MaintenanceStats,
    ) -> ViewDelta:
        (disjunct,) = compiled.disjuncts
        kernel_disjunct = kernels.disjuncts[0] if kernels is not None else None
        relations = stream.relations
        delta_counts: dict[tuple, int] = {}
        for index, relation in enumerate(relations):
            rules = disjunct.rules.get(relation)
            if not rules:
                continue
            # Telescoping: changed relations after this one are evaluated in
            # their pre-transaction state, everything else live (post-state).
            resolve = resolvers.pre_transaction(frozenset(relations[index + 1 :]))
            inserted = stream.inserted(relation)
            deleted = stream.deleted(relation)
            if kernel_disjunct is not None:
                for rule_kernels in kernel_disjunct.rules[relation]:
                    if inserted:
                        stats.delta_queries += 1
                        rule_kernels.count(inserted, resolve, delta_counts, 1)
                    if deleted:
                        stats.delta_queries += 1
                        rule_kernels.count(deleted, resolve, delta_counts, -1)
                continue
            for rule in rules:
                if inserted:
                    stats.delta_queries += 1
                    for row in rule.head_rows(inserted, resolve):
                        delta_counts[row] = delta_counts.get(row, 0) + 1
                if deleted:
                    stats.delta_queries += 1
                    for row in rule.head_rows(deleted, resolve):
                        delta_counts[row] = delta_counts.get(row, 0) - 1
        if not delta_counts:
            return ViewDelta(view=name)
        counts = self._counts[name]
        current = self._rows[name]
        added: set[tuple] = set()
        removed: set[tuple] = set()
        for row, delta in delta_counts.items():
            if not delta:
                continue
            updated = counts.get(row, 0) + delta
            if updated > 0:
                counts[row] = updated
                if row not in current:
                    current.add(row)
                    added.add(row)
            else:
                # A correct telescoped delta never drives a count negative;
                # clamping keeps the row set consistent regardless.
                counts.pop(row, None)
                if row in current:
                    current.discard(row)
                    removed.add(row)
        return ViewDelta(view=name, added=frozenset(added), removed=frozenset(removed))

    def _apply_dred(
        self,
        name: str,
        compiled: CompiledViewDelta,
        kernels: MaintenanceKernels | None,
        stream: DeltaStream,
        resolvers: _StateResolvers,
        stats: MaintenanceStats,
    ) -> ViewDelta:
        current = self._rows[name]
        live = resolvers.live()
        augmented = resolvers.augmented()
        kernel_disjuncts = kernels.disjuncts if kernels is not None else None

        # Insertion rules run against the post-state: every valuation they
        # produce is a real derivation, and set insertion is idempotent.
        added: set[tuple] = set()
        # Deletion rules run against the live-plus-deleted superset, so every
        # derivation that may have died yields its head row as a candidate.
        affected: set[tuple] = set()
        for relation in stream.relations:
            inserted = stream.inserted(relation)
            deleted = stream.deleted(relation)
            if kernel_disjuncts is not None:
                for kernel_disjunct in kernel_disjuncts:
                    for rule_kernels in kernel_disjunct.rules.get(relation, ()):
                        if inserted:
                            stats.delta_queries += 1
                            rule_kernels.insert(inserted, live, current, added)
                        if deleted:
                            stats.delta_queries += 1
                            # The interpreted rule short-circuits an empty
                            # view before probing anything; mirror that so
                            # the meters stay bit-identical.
                            if current:
                                rule_kernels.affected(
                                    deleted, augmented, current, affected
                                )
                continue
            for disjunct in compiled.disjuncts:
                for rule in disjunct.rules.get(relation, ()):
                    if inserted:
                        stats.delta_queries += 1
                        for row in rule.head_rows(inserted, live):
                            if row not in current:
                                added.add(row)
                    if deleted:
                        stats.delta_queries += 1
                        affected.update(rule.affected_rows(deleted, augmented, current))
        current.update(added)

        removed: set[tuple] = set()
        for row in affected:
            if row in added:
                continue  # freshly derived from the post-state: supported
            stats.support_checks += 1
            if kernel_disjuncts is not None:
                supported = any(
                    kernel_disjunct.supported(row, live)
                    for kernel_disjunct in kernel_disjuncts
                )
            else:
                supported = any(
                    disjunct.support.supported(row, live)
                    for disjunct in compiled.disjuncts
                )
            if not supported:
                removed.add(row)
        current.difference_update(removed)
        return ViewDelta(view=name, added=frozenset(added), removed=frozenset(removed))

    def _recompute_fo(self, view: View) -> ViewDelta:
        fresh = self._evaluate_fo(view)
        current = self._rows[view.name]
        added = frozenset(fresh - current)
        removed = frozenset(current - fresh)
        self._rows[view.name] = set(fresh)
        return ViewDelta(view=view.name, added=added, removed=removed)

    # ------------------------------------------------------------------ #
    # Verification (tests, benchmarks)
    # ------------------------------------------------------------------ #

    def recompute(self) -> dict[str, frozenset[tuple]]:
        """Recompute every view from scratch (the benchmark baseline)."""
        fresh: dict[str, frozenset[tuple]] = {}
        for view in self.views:
            if view.language in ("CQ", "UCQ"):
                fresh[view.name] = frozenset(evaluate_ucq(view.as_ucq(), self.database))
            else:
                fresh[view.name] = self._evaluate_fo(view)
        return fresh

    def verify(self) -> bool:
        """Maintained rows — and counting-mode derivation counts — must match
        a from-scratch recomputation."""
        for name, rows in self.recompute().items():
            if frozenset(self._rows[name]) != rows:
                return False
        for view in self.views:
            if self._modes[view.name] != "counting":
                continue
            disjuncts = tuple(d.normalize() for d in view.as_ucq().disjuncts)
            if self._count_derivations(disjuncts[0]) != self._counts[view.name]:
                return False
        return True
