"""Canonical query keys and the LRU plan cache.

Planning is the expensive part of serving a bounded query — homomorphism
search, equivalence checks, conformance verification — while the plans
themselves are immutable and independent of the data.  The service therefore
caches planning outcomes keyed by a *canonical form* of the query, so that
the same query (even written with different variable names, or re-parsed
from text) is planned exactly once.

Canonicalisation renames variables by first occurrence over the head and the
body, which makes alpha-equivalent queries collide on purpose.  It does not
attempt full CQ-isomorphism (atom order still matters): a missed collision
costs one extra planning run, never a wrong answer.

Negative outcomes ("no bounded plan, here is why") are cached too — repeated
unboundable queries would otherwise re-run the whole planner chain on every
call just to fall back again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ...algebra.cq import ConjunctiveQuery
from ...algebra.fo import FOQuery
from ...algebra.terms import Constant, Variable
from ...algebra.ucq import UnionQuery
from ...core.plans import PlanNode
from ...exec.codegen import CompiledPlan


def _canonical_cq(query: ConjunctiveQuery) -> tuple:
    normalized = query.normalize()
    names: dict[Variable, str] = {}

    def term_key(term) -> tuple:
        if isinstance(term, Constant):
            return ("c", repr(term.value))
        if term not in names:
            names[term] = f"v{len(names)}"
        return ("v", names[term])

    head = tuple(term_key(t) for t in normalized.head)
    atoms = tuple(
        (atom.relation, tuple(term_key(t) for t in atom.terms))
        for atom in normalized.atoms
    )
    return (head, atoms)


def canonical_query_key(query: ConjunctiveQuery | UnionQuery | FOQuery) -> tuple:
    """A hashable canonical form of a CQ/UCQ/FO query.

    Two queries with the same key are alpha-equivalent (CQ/UCQ) or textually
    identical (FO); queries with different keys may still be semantically
    equivalent — the cache then simply plans both.
    """
    if isinstance(query, ConjunctiveQuery):
        return ("CQ", _canonical_cq(query))
    if isinstance(query, UnionQuery):
        return ("UCQ", tuple(sorted(_canonical_cq(d) for d in query.disjuncts)))
    if isinstance(query, FOQuery):
        return ("FO", str(query))
    raise TypeError(f"cannot canonicalise a query of type {type(query).__name__}")


@dataclass
class CachedPlan:
    """One planning outcome: either a plan plus its producer, or a failure.

    ``parameters`` is the plan's set of named placeholders, computed once at
    planning time so the serving hot path does not re-walk the plan tree on
    every (cache-hit) execution.  ``dependencies`` names the relations and
    views the outcome depends on — the relations the query mentions, the
    relations the plan fetches, and the views it scans together with their
    base relations.  A write transaction evicts exactly the entries whose
    dependencies it touches (:meth:`LRUPlanCache.invalidate`); an entry with
    an empty dependency set predates dependency tracking and is treated as
    depending on everything.
    """

    plan: PlanNode | None
    planner: str | None
    reason: str = ""
    parameters: frozenset[str] = frozenset()
    dependencies: frozenset[str] = frozenset()
    # Codegen tier state (second artifact per entry).  ``executions`` counts
    # how often this entry's plan ran — the warmup counter deciding when the
    # service compiles it; ``codegen_state`` is ``"pending"`` (still warming
    # up or codegen disabled), ``"compiled"`` or ``"ineligible"`` (the
    # verifier or the closure compiler rejected it; ``codegen_reason`` says
    # why).  Mutated only by the owning service/cache.
    compiled: CompiledPlan | None = None
    executions: int = 0
    codegen_state: str = "pending"
    codegen_reason: str = ""
    # Optimizer-v2 bookkeeping.  ``estimated_fetches``/``fetch_estimates``
    # are the cardinality model's prediction recorded at planning time
    # (``fetch_estimates`` is a tuple of FetchEstimate objects);
    # ``actual_fetches``/``actual_per_relation`` the IOMeter's latest
    # actuals; a warm execution whose actual Dxi misses the estimate by more
    # than the service's replan factor triggers adaptive re-planning, which
    # swaps in a replacement entry carrying ``replans``/``replan_reason``.
    # ``order_report`` is the cost-based planner's chosen-vs-rejected join
    # orders; ``cache_key`` lets the service atomically replace this entry
    # in place; ``restored`` marks entries loaded from the persistent plan
    # store (counted as a store hit on their first cache hit, then cleared).
    estimated_fetches: float | None = None
    fetch_estimates: tuple = ()
    actual_fetches: int | None = None
    actual_per_relation: dict | None = None
    replans: int = 0
    replan_reason: str = ""
    order_report: object | None = None
    cache_key: tuple | None = None
    restored: bool = False

    @property
    def found(self) -> bool:
        return self.plan is not None

    def invalidate_compiled(self) -> None:
        """Drop the compiled artifact and restart the warmup.

        Called when the entry leaves the cache (dependency invalidation, LRU
        eviction, clear): a :class:`PreparedQuery` may still hold the entry
        object, and a closure compiled for it must not survive the eviction
        that declared its planning outcome stale.
        """
        self.compiled = None
        self.executions = 0
        self.codegen_state = "pending"
        self.codegen_reason = ""


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`LRUPlanCache`.

    Mutated only under the owning cache's lock — not independently
    thread-safe.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUPlanCache:
    """A bounded, thread-safe LRU mapping of canonical query keys to plans.

    ``capacity <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which the throughput benchmark uses as its baseline.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: tuple) -> CachedPlan | None:
        """Look up a planning outcome, refreshing its recency on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        """Insert a planning outcome, evicting the least recently used entry."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                evicted.invalidate_compiled()
                self.stats.evictions += 1

    def replace(self, key: tuple, old: CachedPlan, new: CachedPlan) -> bool:
        """Atomically swap a re-planned outcome in for ``old`` under ``key``.

        Succeeds only while ``old`` is still the cached entry (two racing
        re-planners cannot both win); the retired entry's compiled closure
        is invalidated through the same path evictions use, so a
        :class:`PreparedQuery` still holding it falls back to the fresh
        entry's lifecycle.
        """
        with self._lock:
            current = self._entries.get(key)
            if current is not old:
                return False
            self._entries[key] = new
            self._entries.move_to_end(key)
            old.invalidate_compiled()
            return True

    def entries(self) -> list[tuple[tuple, CachedPlan]]:
        """A point-in-time snapshot of (key, entry) pairs, LRU-oldest first.

        Used by the persistent plan store's close-time write-back; the
        entries themselves are shared, not copied.
        """
        with self._lock:
            return list(self._entries.items())

    def invalidate(self, touched: Iterable[str]) -> int:
        """Evict the entries that depend on any of the ``touched`` names.

        ``touched`` mixes relation and view names — exactly what a write
        transaction changed.  Entries whose recorded dependencies are
        disjoint from it survive, so a repeated query over untouched
        relations keeps hitting the cache across writes.  Entries without
        recorded dependencies are evicted conservatively.  Returns the
        number of evicted entries.
        """
        touched = set(touched)
        with self._lock:
            if not touched:
                return 0
            stale = [
                key
                for key, entry in self._entries.items()
                if not entry.dependencies or entry.dependencies & touched
            ]
            for key in stale:
                # Dropping the compiled artifact too: a PreparedQuery may
                # still hold the entry object, and its closure must not
                # outlive the eviction of the planning outcome it came from.
                self._entries.pop(key).invalidate_compiled()
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                entry.invalidate_compiled()
            self._entries.clear()
