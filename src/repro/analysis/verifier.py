"""The typed plan-IR checker and boundedness-certificate builder.

:func:`verify_plan` walks any physical plan — from any planner in the
service's fallback chain, or hand-built — and verifies, per node:

* **schema correctness** — output attributes are duplicate-free and every
  operator's attribute bookkeeping is consistent with its children
  (projections keep existing columns, selections reference existing columns,
  unions/differences have identical layouts, products disjoint ones);
* **access-constraint conformance** — every ``fetch`` names a relation and
  attributes that exist, its ``X``-columns are exactly bound by its child at
  that point in the plan, and a declared access constraint covers it
  (condition (a) of Lemma 3.8);
* **boundedness** — the input of every ``fetch`` has bounded output under
  the access schema (condition (b)), decided exactly through the
  element-query procedure of Theorem 3.4 and *witnessed* by a
  :class:`~repro.analysis.diagnostics.FetchCertificate`: the chain of
  ``cov(Q, A)`` derivation steps covering each ``X``-attribute, or a minimal
  uncovered-variable counterexample.

The checks deliberately re-derive everything from node *fields* rather than
trusting constructor invariants, so corrupted plans (the seeded mutations of
``tests/test_analysis.py``, or a buggy planner bypassing the constructors)
are caught even though the constructors would have rejected them.

:func:`verify_delta_program` applies the same discipline to the maintenance
kernel's compiled delta rules (:mod:`repro.exec.delta_compiler`): every body
atom has its rule, every join stage's positional bookkeeping is arithmetic-
checked against the relation arities, and the head projection only reads
columns the pipeline actually produces.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Variable
from ..algebra.views import ViewSet
from ..core.access import AccessSchema
from ..core.bounded_output import bounded_output_witness
from ..core.element_queries import ElementQueryBudget
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from ..core.rewriting import plan_to_ucq
from ..errors import (
    BudgetExceededError,
    PlanError,
    SchemaError,
    UnsupportedQueryError,
)
from ..exec.delta_compiler import CompiledViewDelta
from .diagnostics import (
    BoundednessCounterexample,
    CoverageStep,
    FetchCertificate,
    VerificationReport,
)


def verify_plan(
    plan: PlanNode,
    schema: DatabaseSchema,
    *,
    views: ViewSet | None = None,
    access_schema: AccessSchema | None = None,
    budget: ElementQueryBudget | None = None,
    expected_attributes: Sequence[str] | None = None,
    expected_arity: int | None = None,
    check_boundedness: bool = True,
    subject: str = "",
) -> VerificationReport:
    """Statically verify a physical plan; see the module docstring.

    ``expected_attributes`` / ``expected_arity`` pin the root schema (the
    service passes the query's head arity); ``check_boundedness`` gates the
    exact (worst-case exponential) bounded-output decision — structural and
    conformance checks always run.
    """
    report = VerificationReport(subject=subject or f"plan({plan.label()})")
    _check_node(plan, (), schema, views, access_schema, report)
    _check_root(plan, expected_attributes, expected_arity, report)
    if access_schema is not None and check_boundedness and report.ok:
        _check_boundedness(plan, schema, views, access_schema, budget, report)
    return report


def codegen_eligibility(
    plan: PlanNode,
    schema: DatabaseSchema,
    *,
    views: ViewSet | None = None,
    access_schema: AccessSchema | None = None,
    budget: ElementQueryBudget | None = None,
    expected_arity: int | None = None,
    subject: str = "",
) -> VerificationReport:
    """Decide whether a plan may be compiled to a specialized closure.

    The codegen tier bypasses the interpreted operator constructors, so the
    gate is the full :func:`verify_plan` discipline: a plan is only
    codegen-eligible once it verifies (schema bookkeeping, access-constraint
    conformance, boundedness).  Unlike the serving path — which *raises* on a
    bad plan — eligibility must never take the service down: any exception
    out of the verifier is folded into a failing report, and the service then
    simply keeps interpreting that plan.
    """
    subject = subject or f"codegen({plan.label()})"
    try:
        return verify_plan(
            plan,
            schema,
            views=views,
            access_schema=access_schema,
            budget=budget,
            expected_arity=expected_arity,
            subject=subject,
        )
    except BudgetExceededError as exc:
        report = VerificationReport(subject=subject)
        report.add(
            "codegen.budget-exceeded",
            f"boundedness check exceeded its budget: {exc}",
        )
        return report
    except (PlanError, SchemaError, UnsupportedQueryError) as exc:
        report = VerificationReport(subject=subject)
        report.add("codegen.verifier-error", f"plan verification failed: {exc}")
        return report


def delta_codegen_eligibility(
    compiled: CompiledViewDelta,
    schema: DatabaseSchema,
) -> VerificationReport:
    """Decide whether a view's delta program may be compiled to kernels.

    The maintenance codegen tier (:func:`repro.exec.delta_compiler.
    compile_maintenance`) generates fused loop nests that bypass the
    interpreted rule pipelines, so the gate is the full
    :func:`verify_delta_program` discipline.  Like
    :func:`codegen_eligibility`, this must never take a write down: any
    exception out of the verifier is folded into a failing report, and the
    maintainer then keeps interpreting that view's rules forever.
    """
    subject = f"delta-codegen({compiled.name})"
    try:
        report = verify_delta_program(compiled, schema)
        report.subject = subject
        return report
    except (PlanError, SchemaError, UnsupportedQueryError) as exc:
        report = VerificationReport(subject=subject)
        report.add(
            "delta-codegen.verifier-error",
            f"delta program verification failed: {exc}",
        )
        return report


# --------------------------------------------------------------------------- #
# Structural / conformance checks (field-level, constructor-independent)
# --------------------------------------------------------------------------- #


def _check_root(
    plan: PlanNode,
    expected_attributes: Sequence[str] | None,
    expected_arity: int | None,
    report: VerificationReport,
) -> None:
    attributes = plan.attributes
    if expected_attributes is not None and tuple(expected_attributes) != attributes:
        report.add(
            "plan.root.schema",
            f"plan produces attributes {attributes}, expected "
            f"{tuple(expected_attributes)}",
        )
    elif expected_arity is not None and len(attributes) != expected_arity:
        report.add(
            "plan.root.arity",
            f"plan produces {len(attributes)} columns, the query head has "
            f"{expected_arity}",
        )


def _check_node(
    node: PlanNode,
    path: tuple[int, ...],
    schema: DatabaseSchema,
    views: ViewSet | None,
    access_schema: AccessSchema | None,
    report: VerificationReport,
) -> None:
    attributes = node.attributes
    if len(set(attributes)) != len(attributes):
        report.add(
            "plan.schema.duplicate-attributes",
            f"{node.label()} produces duplicate attribute names {attributes}",
            path=path,
        )
    if isinstance(node, FetchNode):
        _check_fetch(node, path, schema, access_schema, report)
    elif isinstance(node, ViewScan):
        _check_view_scan(node, path, views, report)
    elif isinstance(node, ProjectNode):
        missing = [a for a in node.kept if a not in node.child.attributes]
        if missing:
            report.add(
                "plan.project.unknown-attribute",
                f"projection keeps {missing} which the child does not produce "
                f"(child has {node.child.attributes})",
                path=path,
            )
    elif isinstance(node, SelectNode):
        _check_select(node, path, report)
    elif isinstance(node, RenameNode):
        unknown = [old for old, _ in node.mapping if old not in node.child.attributes]
        if unknown:
            report.add(
                "plan.rename.unknown-attribute",
                f"rename refers to {unknown} which the child does not produce",
                path=path,
            )
    elif isinstance(node, ProductNode):
        overlap = set(node.left.attributes) & set(node.right.attributes)
        if overlap:
            report.add(
                "plan.product.overlap",
                f"product sides share attributes {sorted(overlap)}",
                path=path,
            )
    elif isinstance(node, UnionNode):
        if node.left.attributes != node.right.attributes:
            report.add(
                "plan.union.schema-mismatch",
                f"union sides produce {node.left.attributes} vs "
                f"{node.right.attributes}",
                path=path,
            )
    elif isinstance(node, DifferenceNode):
        if node.left.attributes != node.right.attributes:
            report.add(
                "plan.difference.schema-mismatch",
                f"difference sides produce {node.left.attributes} vs "
                f"{node.right.attributes}",
                path=path,
            )
    elif not isinstance(node, ConstantScan):
        report.add(
            "plan.unknown-node",
            f"unknown plan node type {type(node).__name__}",
            path=path,
        )
    for index, child in enumerate(node.children):
        _check_node(child, path + (index,), schema, views, access_schema, report)


def _check_fetch(
    node: FetchNode,
    path: tuple[int, ...],
    schema: DatabaseSchema,
    access_schema: AccessSchema | None,
    report: VerificationReport,
) -> None:
    try:
        relation = schema.relation(node.relation)
    except SchemaError:
        report.add(
            "plan.fetch.unknown-relation",
            f"fetch names unknown relation {node.relation!r}",
            path=path,
            subject=node.relation,
        )
        return
    unknown = [
        a for a in node.x_attrs + node.y_attrs if a not in relation.attributes
    ]
    if unknown:
        report.add(
            "plan.fetch.unknown-attribute",
            f"fetch on {node.relation!r} names attributes {unknown} the "
            f"relation does not have",
            path=path,
            subject=node.relation,
        )
    if node.child is None:
        if node.x_attrs:
            report.add(
                "plan.fetch.unbound-key",
                f"fetch on {node.relation!r} has X={node.x_attrs} but no "
                "child plan binding them",
                path=path,
                subject=node.relation,
            )
    else:
        child_attrs = set(node.child.attributes)
        unbound = [a for a in node.x_attrs if a not in child_attrs]
        extra = [a for a in node.child.attributes if a not in set(node.x_attrs)]
        if unbound or extra:
            details = []
            if unbound:
                details.append(f"X-columns {unbound} are not bound by the input")
            if extra:
                details.append(f"input columns {extra} are not fetch keys")
            report.add(
                "plan.fetch.unbound-key",
                f"fetch on {node.relation!r}: " + "; ".join(details)
                + f" (child produces {node.child.attributes}, X={node.x_attrs})",
                path=path,
                subject=node.relation,
            )
    if access_schema is not None and node.covering_constraint(access_schema) is None:
        report.add(
            "plan.fetch.no-constraint",
            f"no declared access constraint covers fetch({node.x_attrs} ∈ _, "
            f"{node.relation}, {node.y_attrs}); available: "
            + ("; ".join(str(c) for c in access_schema.for_relation(node.relation))
               or "none for this relation"),
            path=path,
            subject=node.relation,
        )


def _check_view_scan(
    node: ViewScan,
    path: tuple[int, ...],
    views: ViewSet | None,
    report: VerificationReport,
) -> None:
    if views is None:
        return  # caller did not supply the view set; nothing to check against
    if node.view_name not in views:
        report.add(
            "plan.view.unknown",
            f"plan scans unknown view {node.view_name!r}; known views: "
            + (", ".join(sorted(views.names)) or "none"),
            path=path,
            subject=node.view_name,
        )
        return
    view = views.view(node.view_name)
    if view.arity != len(node.view_attributes):
        report.add(
            "plan.view.arity",
            f"view scan of {node.view_name!r} declares "
            f"{len(node.view_attributes)} attributes but the view has arity "
            f"{view.arity}",
            path=path,
            subject=node.view_name,
        )


def _check_select(
    node: SelectNode, path: tuple[int, ...], report: VerificationReport
) -> None:
    if not node.predicates:
        report.add("plan.select.empty", "selection carries no predicates", path=path)
        return
    child_attrs = set(node.child.attributes)
    equalities: dict[str, set[object]] = {}
    disequalities: dict[str, set[object]] = {}
    for predicate in node.predicates:
        if isinstance(predicate, AttributeEqualsConstant):
            referenced: tuple[str, ...] = (predicate.attribute,)
            bucket = disequalities if predicate.negated else equalities
            bucket.setdefault(predicate.attribute, set()).add(predicate.value)
        elif isinstance(predicate, AttributeEqualsAttribute):
            referenced = (predicate.left, predicate.right)
        else:
            report.add(
                "plan.select.unknown-predicate",
                f"unknown predicate type {type(predicate).__name__}",
                path=path,
            )
            continue
        missing = [a for a in referenced if a not in child_attrs]
        if missing:
            report.add(
                "plan.select.unknown-attribute",
                f"selection references {missing} which the child does not "
                f"produce (child has {node.child.attributes})",
                path=path,
            )
    for attribute, values in equalities.items():
        if len(values) > 1:
            report.add(
                "plan.select.contradiction",
                f"selection equates {attribute!r} with {len(values)} distinct "
                f"constants {sorted(map(repr, values))}; the node is always empty",
                severity="warning",
                path=path,
            )
        clashes = values & disequalities.get(attribute, set())
        if clashes:
            report.add(
                "plan.select.contradiction",
                f"selection requires {attribute!r} both = and != "
                f"{sorted(map(repr, clashes))}; the node is always empty",
                severity="warning",
                path=path,
            )


# --------------------------------------------------------------------------- #
# Boundedness certificates (conformance condition (b), with evidence)
# --------------------------------------------------------------------------- #


def _check_boundedness(
    plan: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None,
    access_schema: AccessSchema,
    budget: ElementQueryBudget | None,
    report: VerificationReport,
) -> None:
    for fetch in plan.fetch_nodes():
        constraint = fetch.covering_constraint(access_schema)
        if constraint is None:
            continue  # already reported as plan.fetch.no-constraint
        certificate = _fetch_certificate(
            fetch, constraint_schema=schema, views=views,
            access_schema=access_schema, budget=budget,
        )
        report.certificates.append(certificate)
        if not certificate.bounded:
            message = (
                f"input of fetch on {fetch.relation!r} does not have bounded "
                f"output under the access schema"
            )
            if certificate.counterexample is not None:
                message += f" ({certificate.counterexample})"
            elif certificate.note:
                message += f" ({certificate.note})"
            report.add(
                "plan.fetch.unbounded-input",
                message,
                subject=fetch.relation,
            )


def fetch_certificates(
    plan: PlanNode,
    schema: DatabaseSchema,
    *,
    views: ViewSet | None = None,
    access_schema: AccessSchema,
    budget: ElementQueryBudget | None = None,
) -> list[FetchCertificate]:
    """Boundedness certificates for every covered fetch node of ``plan``."""
    certificates: list[FetchCertificate] = []
    for fetch in plan.fetch_nodes():
        constraint = fetch.covering_constraint(access_schema)
        if constraint is None:
            continue
        certificates.append(
            _fetch_certificate(
                fetch, constraint_schema=schema, views=views,
                access_schema=access_schema, budget=budget,
            )
        )
    return certificates


def _fetch_certificate(
    fetch: FetchNode,
    *,
    constraint_schema: DatabaseSchema,
    views: ViewSet | None,
    access_schema: AccessSchema,
    budget: ElementQueryBudget | None,
) -> FetchCertificate:
    constraint = fetch.covering_constraint(access_schema)
    assert constraint is not None
    if fetch.child is None:
        return FetchCertificate(
            relation=fetch.relation,
            x_attrs=fetch.x_attrs,
            y_attrs=fetch.y_attrs,
            constraint=constraint,
            bounded=True,
            note=f"single lookup under the empty key: at most "
            f"{constraint.bound} tuples",
        )
    try:
        input_query = plan_to_ucq(
            fetch.child, constraint_schema, views, unfold_views=True
        )
    except (UnsupportedQueryError, PlanError) as exc:
        return FetchCertificate(
            relation=fetch.relation,
            x_attrs=fetch.x_attrs,
            y_attrs=fetch.y_attrs,
            constraint=constraint,
            bounded=False,
            note=f"input cannot be unfolded for verification: {exc}",
        )
    try:
        witness = bounded_output_witness(
            input_query, access_schema, constraint_schema, budget
        )
    except BudgetExceededError as exc:
        return FetchCertificate(
            relation=fetch.relation,
            x_attrs=fetch.x_attrs,
            y_attrs=fetch.y_attrs,
            constraint=constraint,
            bounded=False,
            note=f"bounded-output check exceeded its budget: {exc}",
        )
    steps: list[CoverageStep] = []
    uncovered_attrs: list[str] = []
    child_attrs = fetch.child.attributes
    for disjunct in input_query.disjuncts:
        disjunct_steps, disjunct_uncovered = _coverage_evidence(
            disjunct, child_attrs, access_schema, constraint_schema
        )
        steps.extend(disjunct_steps)
        uncovered_attrs.extend(a for a in disjunct_uncovered if a not in uncovered_attrs)
    counterexample: BoundednessCounterexample | None = None
    note = ""
    if witness.bounded:
        if witness.output_bound is not None:
            note = f"input output size ≤ {witness.output_bound}"
        if uncovered_attrs:
            # The exact element-query sweep proved boundedness even though the
            # per-variable fixpoint on the query itself is inconclusive
            # (equalities forced by A on the element queries close the gap).
            note = (
                "bounded via the element-query analysis of Theorem 3.4; "
                "no per-variable derivation for "
                + ", ".join(uncovered_attrs)
            )
    else:
        names = tuple(uncovered_attrs) or tuple(
            sorted(v.name for v in witness.uncovered)
        )
        reasons: tuple[str, ...] = ()
        if witness.counterexample is not None:
            reasons = (
                f"element query {witness.counterexample.name!r} has uncovered "
                f"head variables {sorted(v.name for v in witness.uncovered)}",
            )
        counterexample = BoundednessCounterexample(uncovered=names, reasons=reasons)
    return FetchCertificate(
        relation=fetch.relation,
        x_attrs=fetch.x_attrs,
        y_attrs=fetch.y_attrs,
        constraint=constraint,
        bounded=witness.bounded,
        steps=tuple(steps),
        counterexample=counterexample,
        note=note,
    )


def coverage_trace(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> dict[Variable, CoverageStep]:
    """The ``cov(Q, A)`` fixpoint of Section 3.1, recording each derivation.

    Same fixpoint as :func:`repro.core.bounded_output.covered_variables`, but
    every newly covered variable remembers *which* constraint at *which* atom
    covered it and through which previously covered variables — the raw
    material of a boundedness certificate.
    """
    normalized = query.normalize()
    trace: dict[Variable, CoverageStep] = {}
    changed = True
    while changed:
        changed = False
        for atom in normalized.atoms:
            relation = schema.relation(atom.relation)
            for constraint in access_schema.for_relation(atom.relation):
                x_positions = relation.positions(constraint.x)
                y_positions = relation.positions(constraint.y)
                x_terms = [atom.terms[p] for p in x_positions]
                if not all(
                    isinstance(t, Constant) or t in trace for t in x_terms
                ):
                    continue
                via = tuple(
                    t.name for t in x_terms if isinstance(t, Variable)
                )
                for position in y_positions:
                    term = atom.terms[position]
                    if isinstance(term, Variable) and term not in trace:
                        trace[term] = CoverageStep(
                            variable=term.name,
                            constraint=constraint,
                            atom=str(atom),
                            via=via,
                        )
                        changed = True
    return trace


def _coverage_evidence(
    disjunct: ConjunctiveQuery,
    output_attrs: tuple[str, ...],
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> tuple[list[CoverageStep], list[str]]:
    """Coverage steps for a fetch input's head variables, plus uncovered attrs.

    The disjunct's head corresponds positionally to the fetch child's output
    attributes, so coverage steps are re-labelled with the plan-level
    attribute names users see in ``explain()`` output.
    """
    normalized = disjunct.normalize()
    trace = coverage_trace(normalized, access_schema, schema)
    head = normalized.head
    rename: dict[str, str] = {}
    for position, term in enumerate(head):
        if isinstance(term, Variable) and position < len(output_attrs):
            rename.setdefault(term.name, output_attrs[position])

    uncovered: list[str] = []
    needed: list[Variable] = []
    seen: set[Variable] = set()
    for position, term in enumerate(head):
        if not isinstance(term, Variable):
            continue
        if term in trace:
            if term not in seen:
                seen.add(term)
                needed.append(term)
        else:
            label = rename.get(term.name, term.name)
            if label not in uncovered:
                uncovered.append(label)
    # Pull in the prerequisite steps of every needed head variable.
    queue = list(needed)
    while queue:
        variable = queue.pop()
        step = trace.get(variable)
        if step is None:
            continue
        for name in step.via:
            prerequisite = Variable(name)
            if prerequisite not in seen and prerequisite in trace:
                seen.add(prerequisite)
                needed.append(prerequisite)
                queue.append(prerequisite)
    # Report steps in derivation (insertion) order, relabelled.
    ordered = [v for v in trace if v in seen]
    steps = [
        CoverageStep(
            variable=rename.get(trace[v].variable, trace[v].variable),
            constraint=trace[v].constraint,
            atom=trace[v].atom,
            via=tuple(rename.get(name, name) for name in trace[v].via),
        )
        for v in ordered
    ]
    return steps, uncovered


# --------------------------------------------------------------------------- #
# Delta-program verification (the maintenance kernel's compiled rules)
# --------------------------------------------------------------------------- #


def verify_delta_program(
    compiled: CompiledViewDelta,
    schema: DatabaseSchema,
) -> VerificationReport:
    """Statically verify a view's compiled delta program.

    Checks, per disjunct: every body atom has exactly one delta rule; every
    rule's seed and join stages are arithmetically consistent (positions
    within the relation arities declared by ``schema``, widths telescoping
    correctly through the pipeline); the head projection reads only columns
    the pipeline produces; and the chosen maintenance mode matches the
    counting-eligibility rule (single CQ, no self-joins).
    """
    report = VerificationReport(subject=f"delta program of view {compiled.name!r}")
    for disjunct_index, compiled_disjunct in enumerate(compiled.disjuncts):
        disjunct = compiled_disjunct.disjunct
        rules = [
            rule
            for per_relation in compiled_disjunct.rules.values()
            for rule in per_relation
        ]
        indices = sorted(rule.atom_index for rule in rules)
        if indices != list(range(len(disjunct.atoms))):
            report.add(
                "delta.rule.missing",
                f"disjunct {disjunct_index} of view {compiled.name!r} has "
                f"{len(disjunct.atoms)} body atoms but rules for atom indices "
                f"{indices}",
                subject=compiled.name,
            )
            continue
        for rule in rules:
            _check_delta_rule(rule, compiled.name, disjunct_index, schema, report)
    from ..exec.delta_compiler import counting_eligible

    eligible = counting_eligible([d.disjunct for d in compiled.disjuncts])
    if compiled.counting and not eligible:
        report.add(
            "delta.mode",
            f"view {compiled.name!r} uses counting maintenance but is not "
            "counting-eligible (self-join or multiple disjuncts)",
            subject=compiled.name,
        )
    return report


def _check_delta_rule(
    rule: Any,
    view_name: str,
    disjunct_index: int,
    schema: DatabaseSchema,
    report: VerificationReport,
) -> None:
    where = (
        f"rule for atom {rule.atom_index} ({rule.relation!r}) of disjunct "
        f"{disjunct_index} of view {view_name!r}"
    )
    try:
        declared_arity = schema.relation(rule.relation).arity
    except SchemaError:
        report.add(
            "delta.rule.unknown-relation",
            f"{where}: relation {rule.relation!r} is not in the schema",
            subject=view_name,
        )
        return
    if rule.arity != declared_arity:
        report.add(
            "delta.rule.arity",
            f"{where}: compiled against arity {rule.arity}, schema declares "
            f"{declared_arity}",
            subject=view_name,
        )
    if any(p >= rule.arity for p in rule.seed_positions):
        report.add(
            "delta.rule.stage",
            f"{where}: seed positions {rule.seed_positions} exceed the atom "
            f"arity {rule.arity}",
            subject=view_name,
        )
    width = len(rule.seed_positions)
    for stage_index, stage in enumerate(rule.stages):
        stage_where = f"{where}, stage {stage_index} ({stage.relation!r})"
        try:
            stage_arity = schema.relation(stage.relation).arity
        except SchemaError:
            report.add(
                "delta.rule.unknown-relation",
                f"{stage_where}: relation {stage.relation!r} is not in the schema",
                subject=view_name,
            )
            return
        if stage.arity != stage_arity:
            report.add(
                "delta.rule.arity",
                f"{stage_where}: compiled against arity {stage.arity}, schema "
                f"declares {stage_arity}",
                subject=view_name,
            )
        if any(p >= stage.arity for p in stage.bound_positions):
            report.add(
                "delta.rule.stage",
                f"{stage_where}: bound positions {stage.bound_positions} exceed "
                f"the atom arity {stage.arity}",
                subject=view_name,
            )
        joined_width = width + stage.arity
        if any(k >= joined_width for k in stage.kept):
            report.add(
                "delta.rule.stage",
                f"{stage_where}: kept positions {stage.kept} exceed the joined "
                f"width {joined_width}",
                subject=view_name,
            )
        if stage.kept[:width] != tuple(range(width)):
            report.add(
                "delta.rule.stage",
                f"{stage_where}: stage does not preserve the {width} pipeline "
                f"columns (kept={stage.kept})",
                subject=view_name,
            )
        if len(stage.fresh_variables) != len(stage.kept) - width:
            report.add(
                "delta.rule.stage",
                f"{stage_where}: {len(stage.fresh_variables)} fresh variables "
                f"but {len(stage.kept) - width} fresh columns",
                subject=view_name,
            )
        width = len(stage.kept)
    for position, _constant in rule.head_spec:
        if position is not None and position >= width:
            report.add(
                "delta.rule.head",
                f"{where}: head projection reads column {position} but the "
                f"pipeline produces only {width}",
                subject=view_name,
            )
