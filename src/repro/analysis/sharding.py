"""Certificate → shard-set derivation: which shards a bounded plan touches.

The paper's access schemas make a bounded plan name exactly the data buckets
it reads: every ``fetch`` node carries the access constraint serving it (its
boundedness certificate, PR 6), and under hash sharding each probe key owns
exactly one partition.  This module derives the shard set **statically** —
no data access — by evaluating the constant-only part of each fetch's key
subtree:

* a fetch served by a *global* (reference-tier) constraint is shard-neutral;
* a fetch whose key subtree is built purely from constants (``ConstantScan``
  leaves combined by product/rename/project/select/union) resolves to
  concrete keys, hence concrete shard ids;
* a fetch whose keys depend on data produced by other fetches or view scans
  (or on unbound :class:`~repro.algebra.terms.Param` placeholders) is
  *dynamic*: its shard set is only known at execution time.

A plan whose partitioned fetches are all static and land on one shard is
single-shard routable — the router executes it against that shard alone and
``explain()`` reports the pruning.  Anything dynamic keeps the bit-identical
fetch-level routing (each probe still touches exactly its owning shard), the
set is just not predictable up front.

The layout argument is duck-typed (``shard_count``,
``constraint_is_partitioned``, ``shard_of_key``) so this module stays free of
storage imports; :class:`repro.storage.snapshots.ShardingLayout` is the
standard implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..algebra.terms import Param
from ..core.access import AccessConstraint, AccessSchema
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
)

#: Static key subtrees larger than this are treated as dynamic — the
#: prediction must stay cheap relative to planning itself.
_MAX_STATIC_KEYS = 64


class ShardLayoutLike(Protocol):
    """The sharding facts the derivation needs (see module docstring)."""

    @property
    def shard_count(self) -> int: ...

    def constraint_is_partitioned(self, constraint: AccessConstraint) -> bool: ...

    def shard_of_key(self, key: Sequence[object]) -> int: ...


@dataclass(frozen=True)
class FetchShards:
    """Shard placement of one ``fetch`` node.

    ``partitioned`` is false for reference-tier fetches (shard-neutral);
    ``dynamic`` is true when the keys are data-dependent; otherwise
    ``shards`` holds the statically derived shard ids.
    """

    relation: str
    partitioned: bool
    dynamic: bool
    shards: frozenset[int]


@dataclass(frozen=True)
class PlanShardSet:
    """The statically derived shard placement of a whole plan."""

    shard_count: int
    fetches: tuple[FetchShards, ...]

    @property
    def shards(self) -> frozenset[int]:
        """Union of the statically known shard ids of partitioned fetches."""
        static: set[int] = set()
        for fetch in self.fetches:
            if fetch.partitioned and not fetch.dynamic:
                static |= fetch.shards
        return frozenset(static)

    @property
    def dynamic_relations(self) -> tuple[str, ...]:
        """Relations whose partitioned fetches have data-dependent keys."""
        return tuple(
            dict.fromkeys(
                f.relation for f in self.fetches if f.partitioned and f.dynamic
            )
        )

    @property
    def single_shard(self) -> bool:
        """Can the whole plan be routed to (at most) one shard statically?"""
        return not self.dynamic_relations and len(self.shards) <= 1

    @property
    def shards_pruned(self) -> int:
        """How many shards the static prediction proves untouched."""
        if self.dynamic_relations:
            return 0
        return max(0, self.shard_count - len(self.shards or frozenset({0})))

    def describe(self) -> str:
        parts: list[str] = []
        shards = self.shards
        if shards:
            listed = ", ".join(str(s) for s in sorted(shards))
            parts.append(f"static {{{listed}}} of {self.shard_count}")
        dynamic = self.dynamic_relations
        if dynamic:
            parts.append("dynamic keys on " + ", ".join(dynamic))
        if not parts:
            return f"shard-neutral (reference data only, {self.shard_count} shard(s))"
        if self.single_shard:
            parts.append(f"single-shard routable, {self.shards_pruned} pruned")
        return "; ".join(parts)

    def __str__(self) -> str:
        return self.describe()


def static_rows(node: PlanNode) -> list[tuple[object, ...]] | None:
    """Evaluate a constant-only plan subtree to its rows, or ``None``.

    Handles exactly the shapes planners put under a fetch: ``ConstantScan``
    leaves combined by products, renames, projections, selections over
    constant predicates and unions.  Anything touching data (fetches, view
    scans) or an unbound parameter makes the subtree dynamic.  The
    evaluation is bounded by :data:`_MAX_STATIC_KEYS` rows.
    """
    if isinstance(node, ConstantScan):
        if isinstance(node.value, Param):
            return None
        return [(node.value,)]
    if isinstance(node, ProductNode):
        left = static_rows(node.left)
        right = static_rows(node.right)
        if left is None or right is None:
            return None
        if len(left) * len(right) > _MAX_STATIC_KEYS:
            return None
        return [l + r for l in left for r in right]
    if isinstance(node, RenameNode):
        # Renaming changes attribute names, not positions or values.
        return static_rows(node.child)
    if isinstance(node, ProjectNode):
        rows = static_rows(node.child)
        if rows is None:
            return None
        child_attributes = node.child.attributes
        positions = [child_attributes.index(a) for a in node.kept]
        return list(
            dict.fromkeys(tuple(row[p] for p in positions) for row in rows)
        )
    if isinstance(node, SelectNode):
        rows = static_rows(node.child)
        if rows is None:
            return None
        attributes = node.child.attributes
        for predicate in node.predicates:
            if isinstance(predicate, AttributeEqualsConstant):
                if isinstance(predicate.value, Param):
                    return None
                position = attributes.index(predicate.attribute)
                rows = [
                    row
                    for row in rows
                    if (row[position] == predicate.value) != predicate.negated
                ]
            elif isinstance(predicate, AttributeEqualsAttribute):
                left = attributes.index(predicate.left)
                right = attributes.index(predicate.right)
                rows = [
                    row
                    for row in rows
                    if (row[left] == row[right]) != predicate.negated
                ]
            else:  # unknown predicate kind: be conservative
                return None
        return rows
    if isinstance(node, UnionNode):
        left = static_rows(node.left)
        right = static_rows(node.right)
        if left is None or right is None:
            return None
        if len(left) + len(right) > _MAX_STATIC_KEYS:
            return None
        return list(dict.fromkeys(left + right))
    return None


def fetch_shard_set(
    node: FetchNode, access_schema: AccessSchema, layout: ShardLayoutLike
) -> FetchShards:
    """Shard placement of one fetch node under ``layout``."""
    constraint = node.covering_constraint(access_schema)
    if constraint is None or not layout.constraint_is_partitioned(constraint):
        return FetchShards(
            relation=node.relation,
            partitioned=False,
            dynamic=False,
            shards=frozenset(),
        )
    if node.child is None:
        return FetchShards(
            relation=node.relation,
            partitioned=True,
            dynamic=False,
            shards=frozenset({layout.shard_of_key(())}),
        )
    rows = static_rows(node.child)
    if rows is None:
        return FetchShards(
            relation=node.relation, partitioned=True, dynamic=True, shards=frozenset()
        )
    # Probe keys are extracted from child rows in the constraint's X order —
    # the same layout IndexLookup uses (repro.exec.lowering.lower_fetch).
    child_attributes = node.child.attributes
    positions = [child_attributes.index(a) for a in constraint.x]
    shards = frozenset(
        layout.shard_of_key(tuple(row[p] for p in positions)) for row in rows
    )
    return FetchShards(
        relation=node.relation, partitioned=True, dynamic=False, shards=shards
    )


def plan_shard_set(
    plan: PlanNode, access_schema: AccessSchema, layout: ShardLayoutLike
) -> PlanShardSet:
    """Derive the static shard placement of every fetch in ``plan``."""
    fetches = tuple(
        fetch_shard_set(node, access_schema, layout)
        for node in plan.iter_nodes()
        if isinstance(node, FetchNode)
    )
    return PlanShardSet(shard_count=layout.shard_count, fetches=fetches)
