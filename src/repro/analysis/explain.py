"""The user-facing explanation object returned by ``QueryService.explain``.

An :class:`Explanation` bundles what the planner chain decided (which
planner, which plan, why), the boundedness evidence for that plan (one
:class:`~repro.analysis.diagnostics.FetchCertificate` per fetch, with its
``cov(Q, A)`` derivation steps and the worst-case fetch bound), the
uncovered-variable counterexample when *no* bounded plan exists, and the
query lints — everything the paper's effective-syntax story promises can be
told *statically*, before touching data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.plans import PlanNode
from .diagnostics import (
    BoundednessCounterexample,
    Diagnostic,
    FetchCertificate,
)
from .sharding import PlanShardSet


@dataclass
class Explanation:
    """Static diagnosis of one query against the service's access schema.

    ``plan`` is ``None`` when no planner found a bounded plan; then
    ``counterexample`` (when derivable) names the variables no chain of
    access constraints can cover.  ``fetch_bound`` is the worst-case number
    of tuples the plan can fetch (the paper's ``Dξ`` bound), when computable.
    """

    query_name: str
    plan: PlanNode | None
    planner: str = ""
    reason: str = ""
    cache_hit: bool = False
    fetch_bound: int | None = None
    certificates: tuple[FetchCertificate, ...] = ()
    counterexample: BoundednessCounterexample | None = None
    lints: tuple[Diagnostic, ...] = ()
    # Codegen-tier state of the cached entry: which tier the next execution
    # will take (``"interpreted"``/``"compiled"``), the raw per-entry state
    # (``"pending"``/``"compiled"``/``"ineligible"``/``"disabled"``), how
    # many executions the entry has seen against how many the warmup wants,
    # how long compilation took, and why codegen was refused (if it was).
    execution_tier: str = "interpreted"
    codegen_state: str = "disabled"
    executions: int = 0
    codegen_warmup: int = 0
    compile_seconds: float | None = None
    codegen_reason: str = ""
    # Static shard placement under sharded snapshot serving (``None`` when
    # the service is unsharded): which partitions the plan's certificates
    # prove it touches, hence how many shards the router prunes.
    shard_set: PlanShardSet | None = None
    # Cost-model estimates of the cached plan (optimizer v2), as plain
    # tuples so this module stays free of engine-layer imports.
    # ``operator_estimates`` rows are ``(access, estimated Dξ, last actual
    # Dξ or None)`` per fetch operator; ``join_orders`` rows are
    # ``(description, model cost, chosen)`` — the chosen order first, then
    # the best rejected completions.  ``replans`` counts how often adaptive
    # re-planning replaced this entry; ``replan_reason`` is the latest
    # trigger.
    estimated_fetches: float | None = None
    actual_fetches: int | None = None
    operator_estimates: tuple[tuple[str, float, int | None], ...] = ()
    order_strategy: str = ""
    join_orders: tuple[tuple[str, float, bool], ...] = ()
    replans: int = 0
    replan_reason: str = ""

    @property
    def bounded(self) -> bool:
        """Did the service find a plan conforming to the access schema?"""
        return self.plan is not None

    def render(self) -> str:
        lines = [f"explain {self.query_name}:"]
        if self.plan is None:
            lines.append("  no bounded plan under the access schema")
            if self.reason:
                lines.append(f"  reason: {self.reason}")
            if self.counterexample is not None:
                lines.append(f"  {self.counterexample}")
                for why in self.counterexample.reasons:
                    lines.append(f"    {why}")
        else:
            source = " (cached)" if self.cache_hit else ""
            lines.append(f"  planner: {self.planner}{source}")
            if self.reason:
                lines.append(f"  reason: {self.reason}")
            if self.codegen_state != "disabled":
                detail = f"  execution tier: {self.execution_tier}"
                if self.codegen_state == "pending":
                    detail += (
                        f" (warming up: {self.executions}/{self.codegen_warmup}"
                        " executions)"
                    )
                elif self.codegen_state == "compiled":
                    if self.compile_seconds is not None:
                        detail += f" (compiled in {self.compile_seconds * 1e3:.2f}ms)"
                elif self.codegen_state == "ineligible":
                    detail += f" (codegen ineligible: {self.codegen_reason})"
                lines.append(detail)
            if self.fetch_bound is not None:
                lines.append(f"  worst-case tuples fetched: {self.fetch_bound}")
            if self.replans:
                lines.append(f"  replanned: {self.replan_reason} (x{self.replans})")
            if self.estimated_fetches is not None:
                summary = f"  estimated Dξ: {self.estimated_fetches:.1f}"
                if self.actual_fetches is not None:
                    summary += f" (last actual: {self.actual_fetches})"
                lines.append(summary)
                for access, estimated, actual in self.operator_estimates:
                    detail = f"    {access}: est {estimated:.1f}"
                    if actual is not None:
                        detail += f", actual {actual}"
                    lines.append(detail)
            if self.order_strategy:
                lines.append(f"  join order ({self.order_strategy}):")
                for description, cost, chosen in self.join_orders:
                    marker = "chosen" if chosen else "rejected"
                    lines.append(f"    [{marker}] {description}  cost {cost:.1f}")
            if self.shard_set is not None and self.shard_set.shard_count > 1:
                lines.append(f"  shard set: {self.shard_set.describe()}")
            for line in self.plan.pretty().splitlines():
                lines.append(f"  {line}")
            for certificate in self.certificates:
                for line in certificate.render().splitlines():
                    lines.append(f"  {line}")
        for lint in self.lints:
            lines.append(f"  {lint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
