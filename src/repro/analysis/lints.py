"""Query lints: legal-but-suspicious patterns, reported before planning.

Unlike the plan verifier (:mod:`repro.analysis.verifier`), nothing here makes
a query *wrong* — a cartesian product evaluates fine, a disconnected body
atom is a legitimate existential guard — but each pattern is a common symptom
of a typo'd join variable or a leftover atom, and each one changes the cost
profile of the bounded plans the planners can find.  Codes:

* ``query.contradiction`` — the equality atoms equate two distinct constants;
  the query is unsatisfiable and every plan for it is the empty plan.
* ``query.cartesian`` — the body splits into ≥2 variable-disjoint components;
  their join is a cartesian product.
* ``query.unused-atoms`` — a body component shares no variable with the head;
  it only contributes an existential non-emptiness check.
* ``query.single-use-variable`` — a non-head variable occurring exactly once;
  often a typo for a join variable (info severity: wildcards are idiomatic).
* ``query.unsafe-negation`` — an FO negation whose free variables are not all
  bound by a positive conjunct alongside it; such subformulas fall outside
  the safe-range fragment the executors evaluate.
"""

from __future__ import annotations

from collections import Counter

from ..algebra.cq import ConjunctiveQuery
from ..algebra.fo import (
    FOAnd,
    FOAtom,
    FOEquality,
    FOExists,
    FOForAll,
    FONot,
    FOOr,
    FOQuery,
    is_positive_existential,
    to_ucq,
)
from ..algebra.terms import Variable
from ..algebra.ucq import UnionQuery
from ..errors import QueryError, UnsupportedQueryError
from .diagnostics import Diagnostic

Query = ConjunctiveQuery | UnionQuery | FOQuery


def lint_query(query: Query) -> list[Diagnostic]:
    """All lint findings for ``query`` (warnings and infos; never errors)."""
    diagnostics: list[Diagnostic] = []
    if isinstance(query, ConjunctiveQuery):
        _lint_cq(query, query.name, diagnostics)
    elif isinstance(query, UnionQuery):
        for index, disjunct in enumerate(query.disjuncts):
            _lint_cq(disjunct, f"{query.name} disjunct {index}", diagnostics)
    else:
        _lint_negation(query, diagnostics)
        if is_positive_existential(query):
            try:
                union = to_ucq(query, sorted(query.free_variables, key=str))
            except (QueryError, UnsupportedQueryError):
                pass
            else:
                for index, disjunct in enumerate(union.disjuncts):
                    _lint_cq(disjunct, f"FO query disjunct {index}", diagnostics)
    return diagnostics


# --------------------------------------------------------------------------- #
# CQ lints
# --------------------------------------------------------------------------- #


def _lint_cq(
    query: ConjunctiveQuery, subject: str, diagnostics: list[Diagnostic]
) -> None:
    if not query.is_satisfiable():
        diagnostics.append(
            Diagnostic(
                "query.contradiction",
                f"{subject}: the equality atoms equate two distinct constants; "
                "the query is unsatisfiable and always returns the empty answer",
                severity="warning",
                subject=query.name,
            )
        )
        return  # normalisation would raise; nothing else to check
    normalized = query.normalize()
    if not normalized.atoms:
        return
    components = _components(normalized)
    if len(components) > 1:
        diagnostics.append(
            Diagnostic(
                "query.cartesian",
                f"{subject}: the body splits into {len(components)} "
                "variable-disjoint components; their join is a cartesian "
                "product",
                severity="warning",
                subject=query.name,
            )
        )
    head_variables = normalized.head_variables
    if head_variables:
        for component in components:
            component_variables = {
                v for index in component for v in normalized.atoms[index].variables
            }
            if not component_variables & head_variables:
                atoms = ", ".join(str(normalized.atoms[i]) for i in sorted(component))
                diagnostics.append(
                    Diagnostic(
                        "query.unused-atoms",
                        f"{subject}: body atoms [{atoms}] share no variable "
                        "with the head; they only contribute an existential "
                        "non-emptiness check",
                        severity="warning",
                        subject=query.name,
                    )
                )
    occurrences: Counter[Variable] = Counter()
    for atom in normalized.atoms:
        for term in atom.terms:
            if isinstance(term, Variable):
                occurrences[term] += 1
    single = sorted(
        v.name
        for v, count in occurrences.items()
        if count == 1 and v not in head_variables
    )
    if single:
        diagnostics.append(
            Diagnostic(
                "query.single-use-variable",
                f"{subject}: variables {single} occur exactly once and are "
                "not returned; wildcards are fine, typo'd join variables are "
                "not",
                severity="info",
                subject=query.name,
            )
        )


def _components(query: ConjunctiveQuery) -> list[set[int]]:
    """Connected components of body atoms under shared variables."""
    count = len(query.atoms)
    parent = list(range(count))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    by_variable: dict[Variable, int] = {}
    for index, atom in enumerate(query.atoms):
        for variable in atom.variables:
            if variable in by_variable:
                parent[find(index)] = find(by_variable[variable])
            else:
                by_variable[variable] = index
    components: dict[int, set[int]] = {}
    for index in range(count):
        components.setdefault(find(index), set()).add(index)
    return list(components.values())


# --------------------------------------------------------------------------- #
# FO negation safety
# --------------------------------------------------------------------------- #


def _fo_children(node: FOQuery) -> tuple[FOQuery, ...]:
    if isinstance(node, (FOAnd, FOOr)):
        return tuple(node.children)
    if isinstance(node, FONot):
        return (node.child,)
    if isinstance(node, (FOExists, FOForAll)):
        return (node.child,)
    return ()


def _lint_negation(node: FOQuery, diagnostics: list[Diagnostic]) -> None:
    """Flag negated subformulas whose free variables lack a positive guard."""
    if isinstance(node, FOAnd):
        bound: set[Variable] = set()
        for child in node.children:
            if not isinstance(child, FONot):
                bound |= set(child.free_variables)
        for child in node.children:
            if isinstance(child, FONot):
                _report_unguarded(child, set(child.free_variables) - bound, diagnostics)
                _lint_negation(child.child, diagnostics)
            else:
                _lint_negation(child, diagnostics)
        return
    if isinstance(node, FONot):
        # A negation with no positive conjunct alongside it guards nothing.
        _report_unguarded(node, set(node.free_variables), diagnostics)
        _lint_negation(node.child, diagnostics)
        return
    if isinstance(node, (FOAtom, FOEquality)):
        return
    for child in _fo_children(node):
        _lint_negation(child, diagnostics)


def _report_unguarded(
    negation: FONot, unguarded: set[Variable], diagnostics: list[Diagnostic]
) -> None:
    if not unguarded:
        return
    names = sorted(v.name for v in unguarded)
    diagnostics.append(
        Diagnostic(
            "query.unsafe-negation",
            f"negated subformula ¬({negation.child}) has free variables "
            f"{names} not bound by a positive conjunct; the formula is "
            "outside the safe-range fragment",
            severity="warning",
        )
    )
