"""Diagnostic data types shared by the static-analysis subsystem.

Every check in :mod:`repro.analysis` — the plan verifier, the query lints,
the view-dependency analysis and the delta-program checks — reports its
findings as :class:`Diagnostic` values collected into a
:class:`VerificationReport`.  A diagnostic is a *located, coded* finding:
``code`` is a stable dotted identifier (``plan.fetch.unbound-key``,
``query.cartesian``, ...) that tests and tooling match on, ``path`` locates
the offending plan node as the sequence of child indices from the root, and
``severity`` separates hard errors (the artifact is wrong) from advisory
lints (the artifact is legal but suspicious).

Boundedness evidence is first-class: a :class:`FetchCertificate` names the
access constraint serving each ``fetch`` and the chain of
:class:`CoverageStep` derivations witnessing that the fetch's input is
bounded (the paper's ``cov(Q, A)`` fixpoint, Section 3.1); when a fetch is
*not* bounded, :class:`BoundednessCounterexample` carries the minimal set of
uncovered variables instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..core.access import AccessConstraint

Severity = Literal["error", "warning", "info"]


@dataclass(frozen=True)
class Diagnostic:
    """One located finding of a static check.

    ``path`` is the child-index path from the plan root to the offending
    node (empty for root-level or non-plan findings); ``subject`` names the
    artifact the finding is about (a relation, view or query name) when one
    exists.
    """

    code: str
    message: str
    severity: Severity = "error"
    path: tuple[int, ...] = ()
    subject: str | None = None

    def __str__(self) -> str:
        location = f" at {'/'.join(map(str, self.path))}" if self.path else ""
        return f"{self.severity}[{self.code}]{location}: {self.message}"


@dataclass(frozen=True)
class CoverageStep:
    """One derivation step of the ``cov(Q, A)`` fixpoint (Section 3.1).

    ``variable`` became covered through ``constraint`` applied at ``atom``;
    ``via`` lists the previously covered variables the step consumed (empty
    when the constraint's key positions hold only constants).
    """

    variable: str
    constraint: AccessConstraint
    atom: str
    via: tuple[str, ...] = ()

    def __str__(self) -> str:
        source = f" from {{{', '.join(self.via)}}}" if self.via else " from constants"
        return f"{self.variable} covered via {self.constraint} at {self.atom}{source}"


@dataclass(frozen=True)
class BoundednessCounterexample:
    """Why a query/fetch input is *not* boundedly evaluable.

    ``uncovered`` is the minimal set of variables no chain of access
    constraints can bound (the NP witness of the complement of BOP,
    Theorem 3.4); ``reasons`` are the accompanying human-readable
    explanations.
    """

    uncovered: tuple[str, ...]
    reasons: tuple[str, ...] = ()

    def __str__(self) -> str:
        return "uncovered variables: " + ", ".join(self.uncovered)


@dataclass(frozen=True)
class FetchCertificate:
    """Boundedness evidence for one ``fetch`` node of a plan.

    ``constraint`` is the declared access constraint serving the fetch
    (condition (a) of conformance, Lemma 3.8); ``steps`` witness that every
    ``X``-attribute of the fetch is covered in the unfolded input query
    (condition (b)).  When ``bounded`` is false, ``counterexample`` names the
    uncovered variables instead.
    """

    relation: str
    x_attrs: tuple[str, ...]
    y_attrs: tuple[str, ...]
    constraint: AccessConstraint
    bounded: bool
    steps: tuple[CoverageStep, ...] = ()
    counterexample: BoundednessCounterexample | None = None
    note: str = ""

    def render(self) -> str:
        x = ", ".join(self.x_attrs) if self.x_attrs else "∅"
        lines = [
            f"fetch({x} ∈ _, {self.relation}, {', '.join(self.y_attrs)}) "
            f"served by {self.constraint}"
        ]
        if not self.bounded and self.counterexample is not None:
            lines.append(f"  NOT bounded — {self.counterexample}")
        for step in self.steps:
            lines.append(f"  {step}")
        if self.note:
            lines.append(f"  {self.note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class VerificationReport:
    """Outcome of one verification run: diagnostics plus fetch certificates.

    ``ok`` means no *error*-severity diagnostic was reported; warnings and
    infos (lints) do not fail verification.
    """

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    certificates: list[FetchCertificate] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity != "error")

    def codes(self) -> frozenset[str]:
        """The set of diagnostic codes reported (tests match on these)."""
        return frozenset(d.code for d in self.diagnostics)

    def add(
        self,
        code: str,
        message: str,
        severity: Severity = "error",
        path: tuple[int, ...] = (),
        subject: str | None = None,
    ) -> None:
        self.diagnostics.append(Diagnostic(code, message, severity, path, subject))

    def extend(self, other: "VerificationReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.certificates.extend(other.certificates)

    def render(self) -> str:
        lines = [f"verification of {self.subject or '<plan>'}: "
                 + ("OK" if self.ok else f"{len(self.errors)} error(s)")]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
        for certificate in self.certificates:
            for line in certificate.render().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
