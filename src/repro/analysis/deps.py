"""View-dependency analysis for the maintenance kernel.

The delta-stream maintainer (:mod:`repro.engine.service.maintenance`)
recomputes or incrementally patches views when their source relations
change.  That is only well-defined when the dependency graph of the view set
is acyclic: a view reading another view must be maintained *after* it, and a
cycle would make the maintenance order (and the semantics) circular.

:func:`analyze_view_dependencies` builds the graph — one edge per
``view -> name it reads``, where a name is either a base relation or another
view of the set — detects cycles, assigns strata (base relations are stratum
0; a view sits one above the highest thing it reads, the classic Datalog
stratification restricted to positive dependencies) and emits the safe
maintenance order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.views import ViewSet
from .diagnostics import Diagnostic


@dataclass
class ViewDependencyReport:
    """Dependency structure of a view set.

    ``edges`` maps each view to the names it reads (base relations and
    views); ``strata`` maps every name to its stratum (0 for base
    relations); ``order`` lists the views in a safe maintenance order
    (dependencies first).  ``cycles`` lists one representative name cycle per
    strongly connected component of size > 1 (or with a self-loop); when
    non-empty, ``order`` and ``strata`` cover only the acyclic part.
    """

    edges: dict[str, frozenset[str]] = field(default_factory=dict)
    strata: dict[str, int] = field(default_factory=dict)
    order: tuple[str, ...] = ()
    cycles: tuple[tuple[str, ...], ...] = ()
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)


def analyze_view_dependencies(views: ViewSet) -> ViewDependencyReport:
    """Build, stratify and cycle-check the dependency graph of ``views``."""
    report = ViewDependencyReport()
    view_names = set(views.names)
    for view in views:
        report.edges[view.name] = frozenset(view.definition.relation_names)

    # Base relations (anything read that is not itself a view) are stratum 0.
    base = {
        name
        for reads in report.edges.values()
        for name in reads
        if name not in view_names
    }
    for name in sorted(base):
        report.strata[name] = 0

    # Kahn's algorithm over view→view edges; whatever never becomes ready is
    # part of (or downstream of) a cycle.
    pending: dict[str, set[str]] = {
        name: {dep for dep in reads if dep in view_names}
        for name, reads in report.edges.items()
    }
    order: list[str] = []
    ready = sorted(name for name, deps in pending.items() if not deps)
    while ready:
        name = ready.pop(0)
        order.append(name)
        depth = max(
            (report.strata.get(dep, 0) for dep in report.edges[name]), default=0
        )
        report.strata[name] = depth + 1
        newly_ready: list[str] = []
        for other, deps in pending.items():
            if name in deps:
                deps.discard(name)
                if not deps and other not in order and other not in ready:
                    newly_ready.append(other)
        ready.extend(sorted(newly_ready))
    report.order = tuple(order)

    stuck = sorted(name for name in pending if name not in order)
    if stuck:
        cycles = _find_cycles(stuck, pending)
        report.cycles = tuple(cycles)
        for cycle in cycles:
            report.diagnostics.append(
                Diagnostic(
                    "views.cycle",
                    "view dependency cycle: " + " -> ".join(cycle + (cycle[0],))
                    + "; the maintenance order is undefined",
                    subject=cycle[0],
                )
            )
    return report


def _find_cycles(
    stuck: list[str], pending: dict[str, set[str]]
) -> list[tuple[str, ...]]:
    """One representative cycle per unresolved view (deduplicated by set)."""
    cycles: list[tuple[str, ...]] = []
    seen: set[frozenset[str]] = set()
    for start in stuck:
        path: list[str] = []
        on_path: set[str] = set()
        node = start
        while node not in on_path:
            path.append(node)
            on_path.add(node)
            remaining = sorted(dep for dep in pending.get(node, ()) if dep in stuck)
            if not remaining:
                path = []
                break
            node = remaining[0]
        if not path:
            continue
        cycle = tuple(path[path.index(node):])
        key = frozenset(cycle)
        if key not in seen:
            seen.add(key)
            cycles.append(cycle)
    return cycles
