"""Seeded plan mutations for property-testing the verifier.

Plan-node constructors validate their arguments, so a *well-formed* API
cannot produce the corrupted plans the verifier exists to catch — a buggy
planner or a future IR change can.  This module manufactures such plans by
building nodes through ``object.__new__`` (bypassing ``__init__``
validation) and grafting them into an otherwise valid plan:

* ``swap-inputs`` — exchange two disjoint subtrees with different attribute
  sets, corrupting the schema bookkeeping at both grafting points;
* ``drop-projection-column`` — remove one column from a projection, starving
  whoever consumed it;
* ``unbind-lookup-column`` — interpose a projection under a ``fetch`` that
  drops one of its ``X``-columns, so the lookup key is no longer bound.

Each :class:`PlanMutation` carries the diagnostic codes the verifier is
*guaranteed* to raise (mutation sites are chosen so a failure is structurally
certain, not probabilistic); ``tests/test_analysis.py`` asserts every mutated
plan is rejected with one of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
)

MUTATION_KINDS = ("swap-inputs", "drop-projection-column", "unbind-lookup-column")


@dataclass(frozen=True)
class PlanMutation:
    """A corrupted variant of a plan plus the diagnostics it must trigger."""

    kind: str
    description: str
    plan: PlanNode
    expected_codes: frozenset[str]


# --------------------------------------------------------------------------- #
# Raw (validation-bypassing) node surgery
# --------------------------------------------------------------------------- #


def _raw(cls: type, **attrs: object) -> PlanNode:
    node = object.__new__(cls)
    for name, value in attrs.items():
        object.__setattr__(node, name, value)
    assert isinstance(node, PlanNode)
    return node


def _replace_child(node: PlanNode, index: int, new_child: PlanNode) -> PlanNode:
    if isinstance(node, FetchNode):
        return _raw(
            FetchNode,
            child=new_child,
            relation=node.relation,
            x_attrs=node.x_attrs,
            y_attrs=node.y_attrs,
        )
    if isinstance(node, ProjectNode):
        return _raw(ProjectNode, child=new_child, kept=node.kept)
    if isinstance(node, SelectNode):
        return _raw(SelectNode, child=new_child, predicates=node.predicates)
    if isinstance(node, RenameNode):
        return _raw(RenameNode, child=new_child, mapping=node.mapping)
    if isinstance(node, (ProductNode, UnionNode, DifferenceNode)):
        left = new_child if index == 0 else node.left
        right = new_child if index == 1 else node.right
        return _raw(type(node), _left=left, _right=right)
    raise AssertionError(f"cannot replace a child of {type(node).__name__}")


def _rebuild(root: PlanNode, path: tuple[int, ...], subtree: PlanNode) -> PlanNode:
    if not path:
        return subtree
    child = _rebuild(root.children[path[0]], path[1:], subtree)
    return _replace_child(root, path[0], child)


def _subtree(root: PlanNode, path: tuple[int, ...]) -> PlanNode:
    node = root
    for index in path:
        node = node.children[index]
    return node


def _edges(root: PlanNode) -> list[tuple[int, ...]]:
    """Paths to every non-root node, in pre-order."""
    paths: list[tuple[int, ...]] = []

    def visit(node: PlanNode, path: tuple[int, ...]) -> None:
        for index, child in enumerate(node.children):
            paths.append(path + (index,))
            visit(child, path + (index,))

    visit(root, ())
    return paths


# --------------------------------------------------------------------------- #
# Failure prediction (which diagnostics a graft is *guaranteed* to trigger)
# --------------------------------------------------------------------------- #


def _predicted_codes(
    parent: PlanNode, index: int, new_attrs: tuple[str, ...]
) -> frozenset[str]:
    """Codes the verifier must raise when child ``index`` of ``parent`` now
    produces ``new_attrs``; empty when a failure is not structurally certain."""
    new_set = set(new_attrs)
    if isinstance(parent, FetchNode):
        if new_set != set(parent.x_attrs):
            return frozenset({"plan.fetch.unbound-key"})
        return frozenset()
    if isinstance(parent, ProjectNode):
        if any(a not in new_set for a in parent.kept):
            return frozenset({"plan.project.unknown-attribute"})
        return frozenset()
    if isinstance(parent, SelectNode):
        referenced: set[str] = set()
        for predicate in parent.predicates:
            if isinstance(predicate, AttributeEqualsConstant):
                referenced.add(predicate.attribute)
            elif isinstance(predicate, AttributeEqualsAttribute):
                referenced.update((predicate.left, predicate.right))
        if referenced - new_set:
            return frozenset({"plan.select.unknown-attribute"})
        return frozenset()
    if isinstance(parent, RenameNode):
        if any(old not in new_set for old, _ in parent.mapping):
            return frozenset({"plan.rename.unknown-attribute"})
        return frozenset()
    if isinstance(parent, UnionNode):
        other = parent.right if index == 0 else parent.left
        if new_attrs != other.attributes:
            return frozenset({"plan.union.schema-mismatch"})
        return frozenset()
    if isinstance(parent, DifferenceNode):
        other = parent.right if index == 0 else parent.left
        if new_attrs != other.attributes:
            return frozenset({"plan.difference.schema-mismatch"})
        return frozenset()
    if isinstance(parent, ProductNode):
        other = parent.right if index == 0 else parent.left
        if new_set & set(other.attributes):
            return frozenset({"plan.product.overlap"})
        return frozenset()
    return frozenset()


# --------------------------------------------------------------------------- #
# The three mutation kinds
# --------------------------------------------------------------------------- #


def mutate_plan(
    plan: PlanNode, kind: str, generator: random.Random
) -> PlanMutation | None:
    """One seeded mutation of ``kind``, or ``None`` when no site applies."""
    if kind == "swap-inputs":
        return _swap_inputs(plan, generator)
    if kind == "drop-projection-column":
        return _drop_projection_column(plan, generator)
    if kind == "unbind-lookup-column":
        return _unbind_lookup_column(plan, generator)
    raise ValueError(f"unknown mutation kind {kind!r}; known: {MUTATION_KINDS}")


def plan_mutations(plan: PlanNode, seed: int = 0) -> list[PlanMutation]:
    """Every applicable mutation kind, each seeded deterministically."""
    generator = random.Random(seed)
    mutations = []
    for kind in MUTATION_KINDS:
        mutation = mutate_plan(plan, kind, generator)
        if mutation is not None:
            mutations.append(mutation)
    return mutations


def _with_root_check(
    original: PlanNode, candidate: PlanNode, codes: frozenset[str]
) -> frozenset[str]:
    """Add the root-schema code when the mutation changed the root layout
    (the verifier is invoked with ``expected_attributes`` of the original)."""
    if candidate.attributes != original.attributes:
        return codes | {"plan.root.schema"}
    return codes


def _swap_inputs(plan: PlanNode, generator: random.Random) -> PlanMutation | None:
    edges = _edges(plan)
    pairs = [
        (p1, p2)
        for i, p1 in enumerate(edges)
        for p2 in edges[i + 1:]
        if p1 != p2[: len(p1)] and p2 != p1[: len(p2)]  # disjoint subtrees
    ]
    generator.shuffle(pairs)
    for path1, path2 in pairs:
        sub1, sub2 = _subtree(plan, path1), _subtree(plan, path2)
        if set(sub1.attributes) == set(sub2.attributes):
            continue
        candidate = _rebuild(_rebuild(plan, path1, sub2), path2, sub1)
        # Predict against the *mutated* tree: when the grafts share a parent
        # (sibling swap) or one parent is an ancestor of the other graft, the
        # pre-mutation siblings would give stale attribute sets.
        parent1 = _subtree(candidate, path1[:-1])
        parent2 = _subtree(candidate, path2[:-1])
        codes = _predicted_codes(parent1, path1[-1], sub2.attributes)
        codes |= _predicted_codes(parent2, path2[-1], sub1.attributes)
        codes = _with_root_check(plan, candidate, codes)
        if not codes:
            continue  # swap not guaranteed to be caught; try another pair
        return PlanMutation(
            kind="swap-inputs",
            description=(
                f"swapped the subtrees at paths {path1} ({sub1.label()}) and "
                f"{path2} ({sub2.label()})"
            ),
            plan=candidate,
            expected_codes=codes,
        )
    return None


def _drop_projection_column(
    plan: PlanNode, generator: random.Random
) -> PlanMutation | None:
    sites = [
        path
        for path in [()] + _edges(plan)
        if isinstance(_subtree(plan, path), ProjectNode)
    ]
    generator.shuffle(sites)
    for path in sites:
        node = _subtree(plan, path)
        assert isinstance(node, ProjectNode)
        if not node.kept:
            continue
        for drop in generator.sample(range(len(node.kept)), len(node.kept)):
            kept = node.kept[:drop] + node.kept[drop + 1:]
            mutated = _raw(ProjectNode, child=node.child, kept=kept)
            codes = (
                _predicted_codes(_subtree(plan, path[:-1]), path[-1], mutated.attributes)
                if path
                else frozenset()
            )
            candidate = _rebuild(plan, path, mutated)
            codes = _with_root_check(plan, candidate, codes)
            if not codes:
                continue
            return PlanMutation(
                kind="drop-projection-column",
                description=(
                    f"dropped column {node.kept[drop]!r} from the projection "
                    f"at path {path}"
                ),
                plan=candidate,
                expected_codes=codes,
            )
    return None


def _unbind_lookup_column(
    plan: PlanNode, generator: random.Random
) -> PlanMutation | None:
    sites = [
        path
        for path in [()] + _edges(plan)
        if isinstance(node := _subtree(plan, path), FetchNode)
        and node.child is not None
        and node.x_attrs
    ]
    generator.shuffle(sites)
    for path in sites:
        fetch = _subtree(plan, path)
        assert isinstance(fetch, FetchNode) and fetch.child is not None
        unbound = generator.choice(fetch.x_attrs)
        kept = tuple(a for a in fetch.child.attributes if a != unbound)
        starved = _raw(ProjectNode, child=fetch.child, kept=kept)
        mutated = _raw(
            FetchNode,
            child=starved,
            relation=fetch.relation,
            x_attrs=fetch.x_attrs,
            y_attrs=fetch.y_attrs,
        )
        candidate = _rebuild(plan, path, mutated)
        return PlanMutation(
            kind="unbind-lookup-column",
            description=(
                f"interposed a projection dropping X-column {unbound!r} under "
                f"the fetch on {fetch.relation!r} at path {path}"
            ),
            plan=candidate,
            expected_codes=frozenset({"plan.fetch.unbound-key"}),
        )
    return None
