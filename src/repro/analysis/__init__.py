"""Static analysis: plan verification, boundedness certificates, query lints.

The subsystem has four checkers, all purely static (no data access):

* :func:`verify_plan` — walk any physical plan and verify schema
  bookkeeping, access-constraint conformance and boundedness, producing a
  :class:`VerificationReport` with located diagnostics and per-fetch
  :class:`FetchCertificate` evidence;
* :func:`verify_delta_program` — the same discipline for the maintenance
  kernel's compiled delta rules;
* :func:`lint_query` — advisory lints for legal-but-suspicious queries
  (cartesian products, unused atoms, contradictions, unsafe negation);
* :func:`analyze_view_dependencies` — stratification and cycle detection
  over a view set, yielding the safe maintenance order.

``QueryService.explain`` / ``QueryService.lint`` are the front ends;
``QueryService(verify_plans=True)`` runs :func:`verify_plan` on every plan
before it is cached, raising
:class:`~repro.errors.PlanVerificationError` on findings.
:mod:`repro.analysis.mutations` manufactures corrupted plans for
property-testing the verifier.
"""

from .deps import ViewDependencyReport, analyze_view_dependencies
from .diagnostics import (
    BoundednessCounterexample,
    CoverageStep,
    Diagnostic,
    FetchCertificate,
    Severity,
    VerificationReport,
)
from .explain import Explanation
from .lints import lint_query
from .mutations import MUTATION_KINDS, PlanMutation, mutate_plan, plan_mutations
from .sharding import (
    FetchShards,
    PlanShardSet,
    ShardLayoutLike,
    fetch_shard_set,
    plan_shard_set,
    static_rows,
)
from .verifier import (
    codegen_eligibility,
    coverage_trace,
    delta_codegen_eligibility,
    fetch_certificates,
    verify_delta_program,
    verify_plan,
)

__all__ = [
    "BoundednessCounterexample",
    "CoverageStep",
    "Diagnostic",
    "Explanation",
    "FetchCertificate",
    "FetchShards",
    "MUTATION_KINDS",
    "PlanMutation",
    "PlanShardSet",
    "Severity",
    "ShardLayoutLike",
    "VerificationReport",
    "ViewDependencyReport",
    "analyze_view_dependencies",
    "codegen_eligibility",
    "coverage_trace",
    "delta_codegen_eligibility",
    "fetch_certificates",
    "fetch_shard_set",
    "lint_query",
    "mutate_plan",
    "plan_mutations",
    "plan_shard_set",
    "static_rows",
    "verify_delta_program",
    "verify_plan",
]
