"""Update streams: insertions and deletions applied to database instances.

The paper's future-work section singles out *bounded view maintenance*:
"incrementally maintain V(D) by accessing a bounded amount of data in D, in
response to changes to D".  This module provides the change model those
features build on:

* :class:`Insertion` / :class:`Deletion` — single-tuple updates;
* :class:`UpdateBatch` — an ordered sequence of updates with helpers to apply
  it to a :class:`repro.storage.instance.Database` and to group it per
  relation;
* :func:`random_update_batch` — a reproducible generator of mixed
  insert/delete workloads whose insertions recombine values already present
  in the data (so the batch remains schema-typed and, when an access schema
  is supplied, keeps the instance inside ``D |= A``).

The incremental maintenance machinery itself lives in
:mod:`repro.engine.maintenance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.access import AccessSchema
from ..errors import SchemaError
from .generators import rng
from .instance import Database


@dataclass(frozen=True)
class Insertion:
    """Insert ``row`` into ``relation``."""

    relation: str
    row: tuple

    def __init__(self, relation: str, row: Iterable[object]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "row", tuple(row))

    @property
    def is_insertion(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"+{self.relation}{self.row}"


@dataclass(frozen=True)
class Deletion:
    """Delete ``row`` from ``relation``."""

    relation: str
    row: tuple

    def __init__(self, relation: str, row: Iterable[object]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "row", tuple(row))

    @property
    def is_insertion(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"-{self.relation}{self.row}"


Update = Insertion | Deletion


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered batch of single-tuple updates."""

    updates: tuple[Update, ...]

    def __init__(self, updates: Iterable[Update]) -> None:
        object.__setattr__(self, "updates", tuple(updates))

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self.updates)

    @property
    def insertions(self) -> tuple[Insertion, ...]:
        return tuple(u for u in self.updates if isinstance(u, Insertion))

    @property
    def deletions(self) -> tuple[Deletion, ...]:
        return tuple(u for u in self.updates if isinstance(u, Deletion))

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(u.relation for u in self.updates)

    def per_relation(self) -> dict[str, list[Update]]:
        grouped: dict[str, list[Update]] = {}
        for update in self.updates:
            grouped.setdefault(update.relation, []).append(update)
        return grouped

    # ------------------------------------------------------------------ #

    def validate(self, database: Database) -> None:
        """Check arities against the database schema (raises :class:`SchemaError`)."""
        for update in self.updates:
            relation = database.schema.relation(update.relation)
            if len(update.row) != relation.arity:
                raise SchemaError(
                    f"update {update} has arity {len(update.row)}, relation "
                    f"{update.relation!r} expects {relation.arity}"
                )

    def apply_to(self, database: Database) -> tuple[int, int]:
        """Apply the batch in order; returns ``(inserted, deleted)`` counts.

        Inserting an existing tuple or deleting an absent one is a no-op (set
        semantics), and is not counted.  The batch is applied as one
        transaction through :meth:`repro.storage.instance.Database.apply`:
        each applied update incrementally maintains the relation's caches,
        secondary indexes, statistics and any registered access-constraint
        indexes, and subscribed delta observers (materialised views, plan
        caches, backends) receive the netted
        :class:`~repro.storage.deltas.DeltaStream` once at the end.
        """
        stream = database.apply(self.updates)
        return stream.applied_insertions, stream.applied_deletions

    def inverted(self) -> "UpdateBatch":
        """The batch undoing this one (insertions become deletions and vice versa)."""
        flipped: list[Update] = []
        for update in reversed(self.updates):
            if isinstance(update, Insertion):
                flipped.append(Deletion(update.relation, update.row))
            else:
                flipped.append(Insertion(update.relation, update.row))
        return UpdateBatch(flipped)


def delete_row(database: Database, relation: str, row: Sequence[object]) -> bool:
    """Remove one tuple from a database relation (returns whether it was present)."""
    return database.relation(relation).discard(row)


def random_update_batch(
    database: Database,
    size: int,
    insert_ratio: float = 0.5,
    seed: int = 0,
    relations: Sequence[str] | None = None,
    access_schema: AccessSchema | None = None,
) -> UpdateBatch:
    """Generate a reproducible batch of mixed insertions and deletions.

    Deletions pick tuples currently in the database; insertions recombine
    attribute values from two existing tuples of the same relation (a common
    way to produce realistic, well-typed synthetic updates).  When
    ``access_schema`` is given, candidate insertions that would violate one of
    its constraints (checked against the running state of the batch) are
    skipped, so applying the batch preserves ``D |= A``.
    """
    generator = rng(seed)
    names = list(relations) if relations is not None else list(database.schema.names)
    names = [name for name in names if len(database.relation(name)) >= 2]
    if not names:
        raise SchemaError("random_update_batch needs at least one relation with >= 2 tuples")

    # Working copy of the fact sets so the batch is internally consistent.
    state: dict[str, set[tuple]] = {
        name: set(database.relation(name).tuples) for name in database.schema.names
    }
    updates: list[Update] = []
    attempts = 0
    while len(updates) < size and attempts < 50 * size:
        attempts += 1
        relation_name = generator.choice(names)
        rows = state[relation_name]
        if not rows:
            continue
        if generator.random() < insert_ratio:
            first, second = generator.sample(sorted(rows, key=repr), 2) if len(rows) >= 2 else (None, None)
            if first is None:
                continue
            candidate = tuple(
                first[i] if generator.random() < 0.5 else second[i] for i in range(len(first))
            )
            if candidate in rows:
                continue
            if access_schema is not None and _violates(
                candidate, relation_name, state, database, access_schema
            ):
                continue
            rows.add(candidate)
            updates.append(Insertion(relation_name, candidate))
        else:
            victim = generator.choice(sorted(rows, key=repr))
            rows.discard(victim)
            updates.append(Deletion(relation_name, victim))
    return UpdateBatch(updates)


def _violates(
    candidate: tuple,
    relation_name: str,
    state: dict[str, set[tuple]],
    database: Database,
    access_schema: AccessSchema,
) -> bool:
    """Would adding ``candidate`` break a constraint on its relation?"""
    schema = database.schema.relation(relation_name)
    for constraint in access_schema.for_relation(relation_name):
        x_positions = schema.positions(constraint.x)
        y_positions = schema.positions(constraint.y)
        key = tuple(candidate[p] for p in x_positions)
        values = {
            tuple(row[p] for p in y_positions)
            for row in state[relation_name]
            if tuple(row[p] for p in x_positions) == key
        }
        values.add(tuple(candidate[p] for p in y_positions))
        if len(values) > constraint.bound:
            return True
    return False
