"""Storage substrate: instances, indices, statistics, updates, delta streams."""

from .deltas import DeltaObserver, DeltaStream, stream_from_changes
from .indexes import AccessIndex, IndexSet
from .instance import Database, Relation
from .statistics import (
    constraint_bound,
    discover_access_constraints,
    verify_expected_schema,
)
from .updates import Deletion, Insertion, UpdateBatch, random_update_batch

__all__ = [
    "AccessIndex",
    "Database",
    "Deletion",
    "DeltaObserver",
    "DeltaStream",
    "IndexSet",
    "Insertion",
    "Relation",
    "UpdateBatch",
    "constraint_bound",
    "discover_access_constraints",
    "random_update_batch",
    "stream_from_changes",
    "verify_expected_schema",
]
