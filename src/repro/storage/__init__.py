"""Storage substrate: instances, access-constraint indices, statistics, updates."""

from .indexes import AccessIndex, IndexSet
from .instance import Database, Relation
from .statistics import (
    constraint_bound,
    discover_access_constraints,
    verify_expected_schema,
)
from .updates import Deletion, Insertion, UpdateBatch, random_update_batch

__all__ = [
    "AccessIndex",
    "Database",
    "Deletion",
    "IndexSet",
    "Insertion",
    "Relation",
    "UpdateBatch",
    "constraint_bound",
    "discover_access_constraints",
    "random_update_batch",
    "verify_expected_schema",
]
