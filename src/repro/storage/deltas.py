"""The delta-stream protocol: net per-transaction changes, observable.

Bounded view maintenance (the paper's Section 8 follow-up) needs one shared
change channel: indexes, statistics, materialised views, plan caches and
execution backends all have to learn *what changed* without re-reading the
database.  This module defines that channel:

* :class:`DeltaStream` — the net effect of one transaction (a batch of
  single-tuple updates applied with set semantics), grouped per relation in
  first-touch order.  "Net" means a tuple inserted and later deleted inside
  the same transaction cancels out: the stream is exactly
  ``D_after − D_before`` per relation, which is the precondition for the
  counting/telescoping delta rules of :mod:`repro.exec.delta_compiler`.
* :class:`DeltaObserver` — the subscriber protocol.  Observers register with
  :meth:`repro.storage.instance.Database.subscribe` and receive one
  ``on_delta(stream)`` call per committed transaction, *after* the database
  (and its per-row-maintained indexes and statistics) reached the new state.

Two granularities, one protocol: per-row observers (access-constraint
indexes, secondary indexes, statistics) ride on the relation-level hooks of
:class:`~repro.storage.instance.Relation` and stay O(1) per tuple; the
transaction-level observers here see the netted batch, which is what view
maintenance and cache invalidation want.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

#: A data row (kept structural: storage does not import the exec kernel).
Row = tuple[object, ...]

_EMPTY: tuple[Row, ...] = ()


class DeltaStream:
    """Net per-relation changes of one committed transaction.

    Built by :meth:`repro.storage.instance.Database.apply` while a batch is
    applied; consumers should treat it as read-only.  ``relations`` preserves
    first-touch order, which observers use as the processing order of the
    telescoped delta rules.
    """

    __slots__ = (
        "_inserted",
        "_deleted",
        "_inserted_rows",
        "_deleted_rows",
        "_order",
        "applied_insertions",
        "applied_deletions",
        "skipped_inadmissible",
    )

    def __init__(self) -> None:
        self._inserted: dict[str, set[Row]] = {}
        self._deleted: dict[str, set[Row]] = {}
        # Per-relation tuple caches of the net rows.  Maintenance reads
        # ``inserted()``/``deleted()`` once per delta rule per direction, so
        # rebuilding a tuple from the set on every call is measurable on hot
        # update paths; a write to either direction drops *both* caches for
        # the relation, because netting mutates the opposite set.
        self._inserted_rows: dict[str, tuple[Row, ...]] = {}
        self._deleted_rows: dict[str, tuple[Row, ...]] = {}
        # First-touch order of relations (dict used as an ordered set).
        self._order: dict[str, None] = {}
        #: Effective (non-no-op) insertions/deletions applied, before netting.
        self.applied_insertions: int = 0
        self.applied_deletions: int = 0
        #: Updates rejected by the transaction's admissibility predicate.
        self.skipped_inadmissible: int = 0

    # ------------------------------------------------------------------ #
    # Recording (storage layer only)
    # ------------------------------------------------------------------ #

    def record_insert(self, relation: str, row: Row) -> None:
        """Record one applied insertion (the row was absent before)."""
        self._order.setdefault(relation, None)
        self.applied_insertions += 1
        self._inserted_rows.pop(relation, None)
        self._deleted_rows.pop(relation, None)
        deleted = self._deleted.get(relation)
        if deleted is not None and row in deleted:
            deleted.discard(row)  # was present pre-transaction: net zero
        else:
            self._inserted.setdefault(relation, set()).add(row)

    def record_delete(self, relation: str, row: Row) -> None:
        """Record one applied deletion (the row was present before)."""
        self._order.setdefault(relation, None)
        self.applied_deletions += 1
        self._inserted_rows.pop(relation, None)
        self._deleted_rows.pop(relation, None)
        inserted = self._inserted.get(relation)
        if inserted is not None and row in inserted:
            inserted.discard(row)  # added by this transaction: net zero
        else:
            self._deleted.setdefault(relation, set()).add(row)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def relations(self) -> tuple[str, ...]:
        """Relations with a non-empty net change, in first-touch order."""
        return tuple(
            name
            for name in self._order
            if self._inserted.get(name) or self._deleted.get(name)
        )

    @property
    def touched(self) -> frozenset[str]:
        """Relation names with a non-empty net change."""
        return frozenset(self.relations)

    def inserted(self, relation: str) -> tuple[Row, ...]:
        """Net-inserted rows: absent before the transaction, present after."""
        cached = self._inserted_rows.get(relation)
        if cached is None:
            rows = self._inserted.get(relation)
            cached = tuple(rows) if rows else _EMPTY
            self._inserted_rows[relation] = cached
        return cached

    def deleted(self, relation: str) -> tuple[Row, ...]:
        """Net-deleted rows: present before the transaction, absent after."""
        cached = self._deleted_rows.get(relation)
        if cached is None:
            rows = self._deleted.get(relation)
            cached = tuple(rows) if rows else _EMPTY
            self._deleted_rows[relation] = cached
        return cached

    @property
    def is_empty(self) -> bool:
        return not any(self._inserted.values()) and not any(self._deleted.values())

    @property
    def applied(self) -> int:
        """Effective single-tuple updates applied (set-semantics no-ops excluded)."""
        return self.applied_insertions + self.applied_deletions

    @property
    def net_size(self) -> int:
        """Total number of net row changes across all relations."""
        return sum(len(rows) for rows in self._inserted.values()) + sum(
            len(rows) for rows in self._deleted.values()
        )

    def __len__(self) -> int:
        return self.net_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(
            f"{name}(+{len(self._inserted.get(name, ()))}/-{len(self._deleted.get(name, ()))})"
            for name in self.relations
        )
        return f"DeltaStream({parts or 'empty'})"


@runtime_checkable
class DeltaObserver(Protocol):
    """Anything that wants the net delta of every committed transaction."""

    def on_delta(self, stream: DeltaStream) -> None:
        """Called once per non-empty transaction, after the database reached
        the new state (per-row maintained indexes and statistics included)."""
        ...


def stream_from_changes(
    inserted: Iterable[tuple[str, Sequence[object]]] = (),
    deleted: Iterable[tuple[str, Sequence[object]]] = (),
) -> DeltaStream:
    """Build a stream from explicit (relation, row) changes (tests, shims)."""
    stream = DeltaStream()
    for relation, row in inserted:
        stream.record_insert(relation, tuple(row))
    for relation, row in deleted:
        stream.record_delete(relation, tuple(row))
    return stream
