"""Deterministic synthetic-data helpers shared by the workload generators.

All generators take an explicit seed and use :class:`random.Random`, so
benchmark and test runs are reproducible.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Sequence


def rng(seed: int) -> random.Random:
    """A seeded random generator (one per workload, never the global one)."""
    return random.Random(seed)


def identifier(prefix: str, number: int, width: int = 6) -> str:
    """A readable synthetic identifier such as ``person_000042``."""
    return f"{prefix}_{number:0{width}d}"


def random_name(generator: random.Random, length: int = 8) -> str:
    """A pronounceable-ish random string (used for names/labels)."""
    letters = string.ascii_lowercase
    return "".join(generator.choice(letters) for _ in range(length))


def zipf_index(generator: random.Random, n: int, skew: float = 1.1) -> int:
    """Sample an index in ``[0, n)`` with an (approximate) Zipf distribution.

    Real-life datasets behind the paper's experiments (social graphs, call
    records) are heavily skewed; the skew is what makes naive scans expensive
    while access constraints still hold.
    """
    if n <= 1:
        return 0
    # Inverse-CDF sampling over a truncated zeta distribution.
    weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
    total = sum(weights)
    target = generator.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if cumulative >= target:
            return index
    return n - 1


def bounded_choices(
    generator: random.Random,
    population: Sequence[object],
    count: int,
) -> list[object]:
    """Sample ``count`` distinct items (or fewer if the population is small)."""
    count = min(count, len(population))
    return generator.sample(list(population), count)


def partitioned_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal counts (deterministic)."""
    if parts <= 0:
        return []
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]
