"""Per-column distribution summaries: equi-depth histograms and HLL sketches.

Storage-private module (enforced by ``tools/lint_kernel.py``): the rest of
the system reaches these summaries only through the statistics API
(:mod:`repro.storage.statistics` re-exports :class:`ColumnStatistics`), the
same way secondary indexes are reachable only through ``Relation.index_on``.

The greedy orderer of PR 2 costs an access path by the *average* bucket size
(cardinality over distinct count), which a single hot key can be off from by
orders of magnitude.  Two structures close that gap per column:

:class:`EquiDepthHistogram`
    Buckets of (approximately) equal row count over the column's sorted
    values.  A heavy hitter occupies whole buckets by itself, so
    :meth:`~EquiDepthHistogram.estimate_eq` sees the skew that the average
    hides — this is what lets the DP join orderer tell a 2000-row probe key
    from a 5-row one.

:class:`DistinctSketch`
    A HyperLogLog-style distinct counter (stable CRC32 hashing, so estimates
    are reproducible across processes — ``hash()`` is salted for strings).
    The relation keeps exact distinct counts too (``_value_counts``); the
    sketch is the mergeable, bounded-memory form the statistics fingerprint
    and future cross-shard aggregation rely on.

Both are maintained *incrementally* through the same per-row observer path
that keeps indexes and statistics fresh inside a ``Database.apply``
transaction (the PR 3 delta stream drives those hooks): an insert or delete
adjusts one bucket / one register in O(log buckets).  Writes never trigger a
rebuild — drifted histograms and delete-heavy sketches are rebuilt *lazily*
on the next read, from the relation's exact value counts.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from typing import Iterable, Mapping

#: Default number of equi-depth buckets per column.
DEFAULT_BUCKETS = 32

#: HyperLogLog register-index bits (m = 2**_HLL_P registers).
_HLL_P = 8
_HLL_M = 1 << _HLL_P
#: Bias-correction constant alpha_m for m = 256.
_HLL_ALPHA = 0.7213 / (1.0 + 1.079 / _HLL_M)


def _stable_hash(value: object) -> int:
    """A process-stable 32-bit hash of a column value.

    ``hash()`` is randomised per process for strings, which would make
    sketch estimates (and everything fingerprinted from them) flap across
    restarts; CRC32 of the repr is stable and fast enough for the write
    path.  CRC alone is too linear for HLL register indexing (similar keys
    cluster in the low bits), so the result goes through a murmur3-style
    finalizer to avalanche the bits.
    """
    digest = zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))
    digest ^= digest >> 16
    digest = (digest * 0x85EBCA6B) & 0xFFFFFFFF
    digest ^= digest >> 13
    digest = (digest * 0xC2B2AE35) & 0xFFFFFFFF
    digest ^= digest >> 16
    return digest


def _sort_key(value: object) -> tuple[str, object]:
    """Order values of mixed types: by type name first, then by value."""
    return (type(value).__name__, value)


def _repr_key(value: object) -> tuple[str, str]:
    return (type(value).__name__, repr(value))


class EquiDepthHistogram:
    """An equi-depth histogram over one column's value multiset.

    Buckets are closed ranges ``[low, high]`` in sort-key order, each built
    to hold roughly ``total / buckets`` rows, with per-bucket row and
    distinct counts.  Values are compared through :func:`_sort_key` (type
    name, then value), falling back to repr-keys when a column mixes
    unorderable values.

    Mutations (:meth:`insert` / :meth:`delete`) adjust the covering bucket in
    place and widen the edge buckets for out-of-range values; boundaries are
    never re-derived on write.  :attr:`drifted` reports when enough mass
    moved that the depths are no longer meaningful — the owner rebuilds from
    the exact value counts on the next read.
    """

    __slots__ = (
        "_lows",
        "_highs",
        "_counts",
        "_distincts",
        "_total",
        "_distinct_total",
        "_built_total",
        "_repr_keys",
    )

    def __init__(
        self,
        lows: list,
        highs: list,
        counts: list[int],
        distincts: list[int],
        repr_keys: bool,
    ) -> None:
        self._lows = lows
        self._highs = highs
        self._counts = counts
        self._distincts = distincts
        self._total = sum(counts)
        self._distinct_total = sum(distincts)
        self._built_total = self._total
        self._repr_keys = repr_keys

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls, value_counts: Mapping[object, int], buckets: int = DEFAULT_BUCKETS
    ) -> "EquiDepthHistogram":
        """Build from an exact ``value -> count`` multiset in one pass."""
        repr_keys = False
        try:
            ordered = sorted(value_counts.items(), key=lambda kv: _sort_key(kv[0]))
        except TypeError:
            repr_keys = True
            ordered = sorted(value_counts.items(), key=lambda kv: _repr_key(kv[0]))
        key = _repr_key if repr_keys else _sort_key
        total = sum(count for _, count in ordered)
        if not ordered:
            return cls([], [], [], [], repr_keys)
        depth = max(1, total // max(1, buckets))
        lows: list = []
        highs: list = []
        counts: list[int] = []
        distincts: list[int] = []
        bucket_count = 0
        bucket_distinct = 0
        for value, count in ordered:
            value_key = key(value)
            if not lows or (bucket_count >= depth and len(lows) < buckets):
                lows.append(value_key)
                highs.append(value_key)
                counts.append(0)
                distincts.append(0)
                bucket_count = 0
                bucket_distinct = 0
            highs[-1] = value_key
            counts[-1] += count
            distincts[-1] += 1
            bucket_count += count
            bucket_distinct += 1
        return cls(lows, highs, counts, distincts, repr_keys)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    @property
    def total(self) -> int:
        return self._total

    @property
    def bucket_count(self) -> int:
        return len(self._counts)

    def estimate_eq(self, value: object) -> float:
        """Expected rows whose column equals ``value``.

        Sums the covering buckets: a bucket pinned to a single value (a
        heavy hitter spilling over bucket boundaries) contributes its exact
        count, a mixed bucket its average per-distinct share.
        """
        if not self._counts:
            return 0.0
        key = _repr_key(value) if self._repr_keys else _sort_key(value)
        index = bisect_left(self._highs, key)
        if index >= len(self._counts):
            return self._total / max(1, self._distinct_total)
        estimate = 0.0
        while index < len(self._counts) and self._lows[index] <= key <= self._highs[index]:
            if self._lows[index] == self._highs[index]:
                estimate += self._counts[index]
            else:
                estimate += self._counts[index] / max(1, self._distincts[index])
            index += 1
        if estimate == 0.0:
            # Value falls between buckets (or before the first): unseen at
            # build time; charge the global average share.
            estimate = self._total / max(1, self._distinct_total)
        return estimate

    def average_bucket(self) -> float:
        """Average rows per distinct value (the classical estimate)."""
        return self._total / max(1, self._distinct_total)

    def skewed_bucket(self) -> float:
        """Expected bucket size when probing with a data-distributed key.

        The second moment ``sum(count_b^2 / distinct_b) / total`` — heavy
        buckets weigh quadratically, as they do when probe keys are drawn
        from the same skewed data.
        """
        if self._total <= 0:
            return 0.0
        second = sum(
            count * count / max(1, distinct)
            for count, distinct in zip(self._counts, self._distincts)
        )
        return second / self._total

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def _locate(self, value: object) -> int | None:
        if not self._counts:
            return None
        key = _repr_key(value) if self._repr_keys else _sort_key(value)
        index = bisect_left(self._highs, key)
        if index >= len(self._counts):
            self._highs[-1] = key  # widen the top bucket
            return len(self._counts) - 1
        if key < self._lows[index]:
            self._lows[index] = key  # widen downwards (covers pre-first too)
        return index

    def insert(self, value: object, new_value: bool) -> None:
        """Fold one inserted row in; ``new_value`` marks a fresh distinct."""
        index = self._locate(value)
        if index is None:
            key = _repr_key(value) if self._repr_keys else _sort_key(value)
            self._lows = [key]
            self._highs = [key]
            self._counts = [0]
            self._distincts = [0]
            index = 0
        self._counts[index] += 1
        self._total += 1
        if new_value:
            self._distincts[index] += 1
            self._distinct_total += 1

    def delete(self, value: object, last_of_value: bool) -> None:
        """Fold one deleted row out; ``last_of_value`` drops a distinct."""
        index = self._locate(value)
        if index is None:
            return
        self._counts[index] = max(0, self._counts[index] - 1)
        self._total = max(0, self._total - 1)
        if last_of_value:
            self._distincts[index] = max(0, self._distincts[index] - 1)
            self._distinct_total = max(0, self._distinct_total - 1)

    @property
    def drifted(self) -> bool:
        """Has enough mass moved that the equi-depth property broke down?

        True when the total grew or shrank past 2x of the build-time total
        (plus a small absolute slack so tiny relations do not thrash), or
        when some bucket holds more than 4x the current fair depth.  Reads
        rebuild then; writes never do.
        """
        built = self._built_total
        if self._total > 2 * built + 16 or self._total < built // 2 - 16:
            return True
        if self._counts:
            fair = max(1, self._total // len(self._counts))
            if max(self._counts) > 4 * fair + 16:
                return True
        return False


class DistinctSketch:
    """HyperLogLog-style distinct counter with stable hashing.

    Insert-only by nature: deletions are tallied, and once they exceed a
    quarter of the inserts the sketch reports itself :attr:`stale` — the
    owning column summary then rebuilds it from the exact value counts on
    the next read (never on the write path).
    """

    __slots__ = ("_registers", "_inserts", "_deletes")

    def __init__(self) -> None:
        self._registers = bytearray(_HLL_M)
        self._inserts = 0
        self._deletes = 0

    @classmethod
    def of(cls, values: Iterable[object]) -> "DistinctSketch":
        sketch = cls()
        for value in values:
            sketch.insert(value)
        return sketch

    def insert(self, value: object) -> None:
        digest = _stable_hash(value)
        index = digest & (_HLL_M - 1)
        window = digest >> _HLL_P  # remaining 24 bits
        rank = (32 - _HLL_P) - window.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank
        self._inserts += 1

    def record_delete(self) -> None:
        self._deletes += 1

    @property
    def stale(self) -> bool:
        return self._deletes > max(16, self._inserts // 4)

    def estimate(self) -> float:
        """The HLL cardinality estimate (with small-range correction)."""
        harmonic = 0.0
        zeros = 0
        for register in self._registers:
            harmonic += 2.0 ** (-register)
            if register == 0:
                zeros += 1
        raw = _HLL_ALPHA * _HLL_M * _HLL_M / harmonic
        if raw <= 2.5 * _HLL_M and zeros:
            import math

            return _HLL_M * math.log(_HLL_M / zeros)
        return raw


class ColumnStatistics:
    """Live distribution summary of one column of one relation.

    Bundles the exact distinct count (mirrored from the relation's value
    counts), the :class:`DistinctSketch` estimate and the
    :class:`EquiDepthHistogram`, and owns the lazy-rebuild policy: reads go
    through :meth:`fresh`, which rebuilds whichever structure drifted from
    the exact counts; writes only ever touch one bucket / one register.

    Deliberately excluded from dataclass comparisons of its owner
    (:class:`repro.storage.statistics.RelationStatistics`): two statistics
    snapshots over the same data are equal regardless of how their
    histograms were bucketed.
    """

    __slots__ = ("histogram", "sketch", "distinct", "_counts")

    def __init__(self, value_counts: Mapping[object, int]) -> None:
        self._counts = value_counts
        self.histogram = EquiDepthHistogram.build(value_counts)
        self.sketch = DistinctSketch.of(value_counts)
        self.distinct = len(value_counts)

    # -- write path (one bucket / one register, never a rebuild) -------- #

    def on_insert(self, value: object, new_value: bool) -> None:
        self.histogram.insert(value, new_value)
        if new_value:
            self.sketch.insert(value)
            self.distinct += 1

    def on_delete(self, value: object, last_of_value: bool) -> None:
        self.histogram.delete(value, last_of_value)
        if last_of_value:
            self.sketch.record_delete()
            self.distinct = max(0, self.distinct - 1)

    # -- read path ------------------------------------------------------ #

    def fresh(self) -> "ColumnStatistics":
        """Self, after lazily rebuilding whatever drifted (reads only)."""
        if self.histogram.drifted:
            self.histogram = EquiDepthHistogram.build(self._counts)
        if self.sketch.stale:
            self.sketch = DistinctSketch.of(self._counts)
        self.distinct = len(self._counts)
        return self

    def estimate_eq(self, value: object) -> float:
        """Expected rows with this column equal to ``value`` (skew-aware)."""
        return self.fresh().histogram.estimate_eq(value)

    def average_bucket(self) -> float:
        return self.fresh().histogram.average_bucket()

    def sketch_distinct(self) -> float:
        return self.fresh().sketch.estimate()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ColumnStatistics(distinct={self.distinct}, "
            f"buckets={self.histogram.bucket_count})"
        )
