"""Indices realising access constraints.

Each access constraint ``R(X -> Y, N)`` comes with an index: a function that,
given an ``X``-value ``ā``, returns the ``XY``-projections
``D_{R:XY}(X = ā)`` in ``O(N)`` time.  :class:`AccessIndex` is a hash index
implementing exactly that contract; :class:`IndexSet` bundles the indices for
a whole access schema over one database and is the *fetch provider* used by
the bounded-plan executor.

The indices are maintained **incrementally**: every :class:`AccessIndex`
registers itself as an observer of its relation, so single-tuple updates
(e.g. :meth:`repro.storage.updates.UpdateBatch.apply_to`) touch exactly one
bucket per index instead of forcing a rebuild of the whole
:class:`IndexSet`.  Deletions are O(1) through per-projection support
counts: a projection disappears exactly when its last supporting base tuple
does.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..errors import AccessConstraintError
from .instance import Database

_EMPTY: frozenset[tuple] = frozenset()


class AccessIndex:
    """A hash index from ``X``-values to ``X ∪ Y`` projections for one constraint."""

    def __init__(self, constraint: AccessConstraint, database: Database) -> None:
        self.constraint = constraint
        relation = database.relation(constraint.relation)
        schema = relation.schema
        self._x_positions = schema.positions(constraint.x)
        out_attrs = constraint.output_attributes
        self._out_positions = schema.positions(out_attrs)
        self.output_attributes = out_attrs
        # Positions of the constraint's Y attributes inside the stored
        # XY-projections (used by the bucket-local admissibility check).
        self._y_in_out = tuple(out_attrs.index(a) for a in constraint.y)
        # Per key: projection -> number of supporting base tuples.
        self._buckets: dict[tuple, dict[tuple, int]] = {}
        # Frozen per-key views handed out by lookup(), invalidated per key.
        self._frozen: dict[tuple, frozenset[tuple]] = {}
        for row in relation:
            self.on_insert(row)
        relation.register_observer(self)

    # ------------------------------------------------------------------ #
    # Maintenance hooks (driven by the relation on every mutation)
    # ------------------------------------------------------------------ #

    def on_insert(self, row: tuple) -> None:
        key = tuple(row[p] for p in self._x_positions)
        value = tuple(row[p] for p in self._out_positions)
        counts = self._buckets.setdefault(key, {})
        counts[value] = counts.get(value, 0) + 1
        self._frozen.pop(key, None)

    def on_delete(self, row: tuple) -> None:
        key = tuple(row[p] for p in self._x_positions)
        counts = self._buckets.get(key)
        if counts is None:
            return
        value = tuple(row[p] for p in self._out_positions)
        remaining = counts.get(value)
        if remaining is None:
            return
        if remaining <= 1:
            del counts[value]
            if not counts:
                del self._buckets[key]
        else:
            counts[value] = remaining - 1
        self._frozen.pop(key, None)

    # ------------------------------------------------------------------ #

    def lookup(self, key: Sequence[object]) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` — the XY-projections for this key."""
        key = tuple(key)
        frozen = self._frozen.get(key)
        if frozen is None:
            bucket = self._buckets.get(key)
            if bucket is None:
                # Do NOT memoise misses: probe keys come from arbitrary plan
                # rows, and caching every absent key would grow without bound.
                return _EMPTY
            frozen = frozenset(bucket)
            self._frozen[key] = frozen
        return frozen

    def admits(self, row: tuple) -> bool:
        """Would inserting ``row`` keep this constraint satisfied?

        Inspects only the one bucket the row's ``X``-value hashes to — the
        check reads a bounded number of index entries (at most ``N`` distinct
        projections), never the relation.  Re-inserting an existing
        ``Y``-value never violates the bound.
        """
        key = tuple(row[p] for p in self._x_positions)
        bucket = self._buckets.get(key)
        if bucket is None:
            return self.constraint.bound >= 1
        y_in_out = self._y_in_out
        out_positions = self._out_positions
        values = {tuple(value[i] for i in y_in_out) for value in bucket}
        values.add(tuple(row[out_positions[i]] for i in y_in_out))
        return len(values) <= self.constraint.bound

    @property
    def keys(self) -> frozenset[tuple]:
        return frozenset(self._buckets)

    def max_group_size(self) -> int:
        """Largest number of distinct XY-projections of any group (≤ N when D |= A)."""
        return max((len(v) for v in self._buckets.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AccessIndex({self.constraint}, {len(self._buckets)} keys)"


class IndexSet:
    """All indices of an access schema over one database.

    The executor charges I/O only for tuples retrieved through these indices
    (the bag ``Dξ`` of the paper); scans of cached views are free.  The set
    stays consistent under updates applied through the storage layer (see
    the module docstring) — rebuilding it after a delta is never required.
    """

    def __init__(self, database: Database, access_schema: AccessSchema) -> None:
        access_schema.validate(database.schema)
        self.database = database
        self.access_schema = access_schema
        self._indices: dict[AccessConstraint, AccessIndex] = {}
        for constraint in access_schema:
            self._indices[constraint] = AccessIndex(constraint, database)

    def index_for(self, constraint: AccessConstraint) -> AccessIndex:
        try:
            return self._indices[constraint]
        except KeyError as exc:
            raise AccessConstraintError(
                f"no index built for constraint {constraint}; it is not part of the access schema"
            ) from exc

    def fetch(self, constraint: AccessConstraint, key: Sequence[object]) -> frozenset[tuple]:
        """Fetch ``D_{R:XY}(X = key)`` through the constraint's index."""
        return self.index_for(constraint).lookup(key)

    def admissible(self, update: object) -> bool:
        """Would applying ``update`` keep every constraint satisfied?

        The bounded-admissibility check of the write path: only the buckets
        the update's key values hash to are inspected, so checking
        ``D ⊕ ΔD |= A`` reads a bounded number of index entries.  Deletions
        are always admissible.
        """
        if not getattr(update, "is_insertion", False):
            return True
        row = tuple(update.row)  # type: ignore[attr-defined]
        for constraint in self.access_schema.for_relation(update.relation):  # type: ignore[attr-defined]
            if not self._indices[constraint].admits(row):
                return False
        return True

    @property
    def facts(self) -> Mapping[str, frozenset[tuple]]:
        """Direct access to the underlying facts (used only by the *naive* baseline)."""
        return self.database.facts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IndexSet({len(self._indices)} indices over {self.database!r})"
