"""Indices realising access constraints.

Each access constraint ``R(X -> Y, N)`` comes with an index: a function that,
given an ``X``-value ``ā``, returns the ``XY``-projections
``D_{R:XY}(X = ā)`` in ``O(N)`` time.  :class:`AccessIndex` is a hash index
implementing exactly that contract; :class:`IndexSet` bundles the indices for
a whole access schema over one database and is the *fetch provider* used by
the bounded-plan executor.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..errors import AccessConstraintError
from .instance import Database


class AccessIndex:
    """A hash index from ``X``-values to ``X ∪ Y`` projections for one constraint."""

    def __init__(self, constraint: AccessConstraint, database: Database) -> None:
        self.constraint = constraint
        relation = database.relation(constraint.relation)
        schema = relation.schema
        self._x_positions = schema.positions(constraint.x)
        out_attrs = constraint.output_attributes
        self._out_positions = schema.positions(out_attrs)
        self.output_attributes = out_attrs
        self._buckets: dict[tuple, frozenset[tuple]] = {}
        buckets: dict[tuple, set[tuple]] = {}
        for row in relation:
            key = tuple(row[p] for p in self._x_positions)
            value = tuple(row[p] for p in self._out_positions)
            buckets.setdefault(key, set()).add(value)
        self._buckets = {key: frozenset(values) for key, values in buckets.items()}

    def lookup(self, key: Sequence[object]) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` — the XY-projections for this key."""
        return self._buckets.get(tuple(key), frozenset())

    @property
    def keys(self) -> frozenset[tuple]:
        return frozenset(self._buckets)

    def max_group_size(self) -> int:
        """Largest number of distinct XY-projections of any group (≤ N when D |= A)."""
        return max((len(v) for v in self._buckets.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AccessIndex({self.constraint}, {len(self._buckets)} keys)"


class IndexSet:
    """All indices of an access schema over one database.

    The executor charges I/O only for tuples retrieved through these indices
    (the bag ``Dξ`` of the paper); scans of cached views are free.
    """

    def __init__(self, database: Database, access_schema: AccessSchema) -> None:
        access_schema.validate(database.schema)
        self.database = database
        self.access_schema = access_schema
        self._indices: dict[AccessConstraint, AccessIndex] = {}
        for constraint in access_schema:
            self._indices[constraint] = AccessIndex(constraint, database)

    def index_for(self, constraint: AccessConstraint) -> AccessIndex:
        try:
            return self._indices[constraint]
        except KeyError as exc:
            raise AccessConstraintError(
                f"no index built for constraint {constraint}; it is not part of the access schema"
            ) from exc

    def fetch(self, constraint: AccessConstraint, key: Sequence[object]) -> frozenset[tuple]:
        """Fetch ``D_{R:XY}(X = key)`` through the constraint's index."""
        return self.index_for(constraint).lookup(key)

    @property
    def facts(self) -> Mapping[str, frozenset[tuple]]:
        """Direct access to the underlying facts (used only by the *naive* baseline)."""
        return self.database.facts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IndexSet({len(self._indices)} indices over {self.database!r})"
