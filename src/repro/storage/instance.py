"""Database instances: in-memory relations with set semantics.

A :class:`Database` is a set-semantics instance of a
:class:`repro.algebra.schema.DatabaseSchema`.  It exposes the ``facts``
mapping consumed by every evaluation and decision procedure in the library,
and implements ``D |= A`` satisfaction of access schemas.

Relations are more than plain tuple sets: each one lazily builds secondary
hash indexes (:meth:`Relation.index_on` — the probe side of the execution
kernel's joins) and per-relation cardinality/distinct statistics
(:meth:`Relation.statistics` — consumed by the greedy join orderers and the
service planners), both kept consistent under single-tuple mutations.
Access-constraint indexes (:class:`repro.storage.indexes.AccessIndex`)
register themselves as observers and are maintained incrementally too, so
applying an update batch never forces a full index rebuild.

Change propagation has two granularities, one protocol: per-row observers
(indexes, statistics) ride the relation-level hooks, while transaction-level
observers (materialised views, plan caches, execution backends) subscribe to
the database (:meth:`Database.subscribe`) and receive one netted
:class:`~repro.storage.deltas.DeltaStream` per committed :meth:`Database.apply`.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..algebra.schema import DatabaseSchema, RelationSchema
from ..core.access import AccessSchema
from ..errors import SchemaError
from .deltas import DeltaStream
from .histograms import ColumnStatistics
from .statistics import RelationStatistics

#: Upper bound on cached secondary indexes per relation (FIFO eviction).
#: Compiled query pipelines resolve their indexes per execution, so evicting
#: a cold index only costs a rebuild on its next use.
_MAX_CACHED_INDEXES = 8


class _TrackedSet(set):
    """The tuple set of a :class:`Relation`; mutations notify the owner.

    Storage-internal code (and a few long-standing tests) mutate
    ``relation._tuples`` directly; routing the set's own mutators through
    the relation keeps the cached frozen view, the secondary indexes, the
    statistics and every registered access-constraint index consistent no
    matter how a tuple enters or leaves the relation.
    """

    __slots__ = ("_relation",)

    def __init__(self, relation: "Relation") -> None:
        super().__init__()
        self._relation = relation

    def add(self, row: tuple) -> None:
        if row in self:
            return
        super().add(row)
        self._relation._after_insert(row)

    def discard(self, row: tuple) -> None:
        if row not in self:
            return
        super().discard(row)
        self._relation._after_delete(row)

    def remove(self, row: tuple) -> None:
        if row not in self:
            raise KeyError(row)
        self.discard(row)

    def pop(self) -> tuple:
        row = super().pop()
        self._relation._after_delete(row)
        return row

    def clear(self) -> None:
        for row in list(self):
            self.discard(row)

    def update(self, *iterables: Iterable[tuple]) -> None:
        for iterable in iterables:
            for row in iterable:
                self.add(row)

    def difference_update(self, *iterables: Iterable[tuple]) -> None:
        for iterable in iterables:
            for row in iterable:
                self.discard(row)

    def intersection_update(self, *iterables: Iterable[tuple]) -> None:
        keep = set.intersection(*(set(i) for i in iterables)) if iterables else set(self)
        for row in list(self):
            if row not in keep:
                self.discard(row)

    def symmetric_difference_update(self, iterable: Iterable[tuple]) -> None:
        for row in set(iterable):
            if row in self:
                self.discard(row)
            else:
                self.add(row)

    def __ior__(self, other):  # noqa: ANN001 - mirrors set's signature
        self.update(other)
        return self

    def __isub__(self, other):  # noqa: ANN001
        self.difference_update(other)
        return self

    def __iand__(self, other):  # noqa: ANN001
        self.intersection_update(other)
        return self

    def __ixor__(self, other):  # noqa: ANN001
        self.symmetric_difference_update(other)
        return self


class Relation:
    """An instance of a single relation schema (a set of tuples)."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self._tuples: _TrackedSet = _TrackedSet(self)
        self._frozen: frozenset[tuple] | None = None
        self._indexes: dict[tuple[int, ...], dict[tuple, list[tuple]]] = {}
        self._statistics: RelationStatistics | None = None
        # Per-position value -> count multiset backing statistics(); built
        # lazily, then maintained in place so statistics stay O(arity) to
        # refresh after a delta instead of O(|relation|).
        self._value_counts: list[dict[object, int]] | None = None
        # Per-position distribution summaries (equi-depth histogram +
        # distinct sketch).  Built lazily alongside the value counts on the
        # first statistics() read, then maintained per row through the same
        # _after_insert/_after_delete hooks that keep indexes fresh inside a
        # Database.apply transaction — writes touch one bucket, never
        # rebuild; drifted summaries rebuild lazily on the next read.  The
        # hooks run before snapshots publish and observers fire, so planner
        # reads are consistent with the MVCC version they pin.
        self._column_summaries: list[ColumnStatistics] | None = None
        self._observers: list[weakref.ref] = []
        # Monotone mutation counter: snapshot managers compare it against the
        # value recorded at their last build to detect out-of-band mutations
        # (direct add/discard outside a Database.apply transaction).
        self._mutations = 0
        # Serialises lazy index/statistics builds: concurrent *read-only*
        # queries (query_many's thread pool) may race to build the same
        # cache.  Mutations remain single-writer, as before.
        self._build_lock = threading.Lock()
        for row in tuples:
            self.add(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, row: Iterable[object]) -> None:
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.schema.name!r} "
                f"expects {self.schema.arity}"
            )
        self._tuples.add(row)

    def add_many(self, rows: Iterable[Iterable[object]]) -> None:
        for row in rows:
            self.add(row)

    def discard(self, row: Iterable[object]) -> bool:
        """Remove one tuple; returns whether it was present."""
        row = tuple(row)
        if row in self._tuples:
            self._tuples.discard(row)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def tuples(self) -> frozenset[tuple]:
        """The relation as a frozen set (cached; invalidated on mutation)."""
        if self._frozen is None:
            self._frozen = frozenset(self._tuples)
        return self._frozen

    def project(self, attributes: Iterable[str]) -> set[tuple]:
        positions = self.schema.positions(attributes)
        return {tuple(row[p] for p in positions) for row in self._tuples}

    def index_on(self, positions: Sequence[int]) -> Mapping[tuple, Sequence[tuple]]:
        """Secondary hash index keyed on the values at ``positions``.

        Built lazily on first use, cached (at most ``_MAX_CACHED_INDEXES``
        per relation) and maintained incrementally under mutations — the
        execution kernel's joins probe these instead of re-hashing the
        relation on every query.
        """
        key = tuple(positions)
        index = self._indexes.get(key)
        if index is None:
            with self._build_lock:
                index = self._indexes.get(key)
                if index is None:
                    index = {}
                    for row in self._tuples:
                        index.setdefault(tuple(row[p] for p in key), []).append(row)
                    while len(self._indexes) >= _MAX_CACHED_INDEXES:
                        self._indexes.pop(next(iter(self._indexes)), None)
                    self._indexes[key] = index
        return index

    def statistics(self) -> RelationStatistics:
        """Cardinality and per-attribute distinct counts (cached).

        The backing per-position value counts are built once and maintained
        under mutations, so refreshing the statistics after a delta costs
        O(arity), not a relation scan.
        """
        statistics = self._statistics
        if statistics is None:
            counts = self._value_counts
            if counts is None:
                with self._build_lock:
                    counts = self._value_counts
                    if counts is None:
                        counts = [{} for _ in range(self.schema.arity)]
                        for row in self._tuples:
                            for position, per_value in enumerate(counts):
                                value = row[position]
                                per_value[value] = per_value.get(value, 0) + 1
                        self._value_counts = counts
            summaries = self._column_summaries
            if summaries is None:
                with self._build_lock:
                    summaries = self._column_summaries
                    if summaries is None:
                        summaries = [ColumnStatistics(per_value) for per_value in counts]
                        self._column_summaries = summaries
            statistics = RelationStatistics(
                cardinality=len(self._tuples),
                distinct=tuple(len(per_value) for per_value in counts),
                columns=tuple(summary.fresh() for summary in summaries),
            )
            self._statistics = statistics
        return statistics

    # ------------------------------------------------------------------ #
    # Change propagation
    # ------------------------------------------------------------------ #

    def register_observer(self, observer: object) -> None:
        """Register an object with ``on_insert(row)``/``on_delete(row)`` hooks.

        Observers are held weakly: an access-constraint index that goes out
        of scope stops being maintained without explicit deregistration.
        """
        self._observers.append(weakref.ref(observer))

    @property
    def mutation_count(self) -> int:
        """How many single-tuple mutations this relation has seen."""
        return self._mutations

    def _after_insert(self, row: tuple) -> None:
        self._mutations += 1
        self._frozen = None
        self._statistics = None
        counts = self._value_counts
        if counts is not None:
            summaries = self._column_summaries
            for position, per_value in enumerate(counts):
                value = row[position]
                updated = per_value.get(value, 0) + 1
                per_value[value] = updated
                if summaries is not None:
                    summaries[position].on_insert(value, updated == 1)
        for positions, index in list(self._indexes.items()):
            index.setdefault(tuple(row[p] for p in positions), []).append(row)
        self._notify("on_insert", row)

    def _after_delete(self, row: tuple) -> None:
        self._mutations += 1
        self._frozen = None
        self._statistics = None
        counts = self._value_counts
        if counts is not None:
            summaries = self._column_summaries
            for position, per_value in enumerate(counts):
                value = row[position]
                remaining = per_value.get(value, 0) - 1
                if remaining <= 0:
                    per_value.pop(value, None)
                else:
                    per_value[value] = remaining
                if summaries is not None:
                    summaries[position].on_delete(value, remaining <= 0)
        for positions, index in list(self._indexes.items()):
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del index[key]
        self._notify("on_delete", row)

    def _notify(self, hook: str, row: tuple) -> None:
        if not self._observers:
            return
        alive: list[weakref.ref] = []
        for reference in self._observers:
            observer = reference()
            if observer is None:
                continue
            getattr(observer, hook)(row)
            alive.append(reference)
        if len(alive) != len(self._observers):
            self._observers = alive

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Relation({self.schema.name}, {len(self)} tuples)"


class Database:
    """A database instance over a schema.

    >>> from repro.algebra.schema import schema_from_spec
    >>> schema = schema_from_spec({"rating": ("mid", "rank")})
    >>> db = Database(schema)
    >>> db.add("rating", ("m1", 5))
    >>> db.size
    1
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        facts: Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        self.schema = schema
        self._relations: dict[str, Relation] = {
            relation.name: Relation(relation) for relation in schema
        }
        # Transaction-level delta observers (weakly held, like the per-row
        # relation observers): each committed apply() notifies them once.
        self._delta_observers: list[weakref.ref] = []
        # MVCC support: apply() is single-writer (the lock), the _applying
        # flag marks the mid-batch window (snapshot staleness checks are
        # suppressed while it is set), and registered snapshot managers are
        # advanced — new version built and published — before delta
        # observers run, so observers can pin the post-batch snapshot.
        self._write_lock = threading.RLock()
        self._applying = False
        self._snapshot_managers: list[weakref.ref] = []
        if facts:
            for name, rows in facts.items():
                self.add_many(name, rows)

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    def add(self, relation: str, row: Iterable[object]) -> None:
        self._relation(relation).add(row)

    def add_many(self, relation: str, rows: Iterable[Iterable[object]]) -> None:
        self._relation(relation).add_many(rows)

    def _relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from exc

    # ------------------------------------------------------------------ #
    # The delta-stream protocol (transaction-level change propagation)
    # ------------------------------------------------------------------ #

    def subscribe(self, observer: object) -> None:
        """Subscribe an ``on_delta(stream)`` observer to committed transactions.

        Observers are held weakly, mirroring the per-row relation observers: a
        query service that goes out of scope stops being notified without
        explicit deregistration.  Notification happens once per non-empty
        :meth:`apply`, after the database (and every per-row-maintained
        structure) reached the post-transaction state.
        """
        self._delta_observers.append(weakref.ref(observer))

    def unsubscribe(self, observer: object) -> None:
        self._delta_observers = [
            reference
            for reference in self._delta_observers
            if reference() is not None and reference() is not observer
        ]

    def apply(
        self,
        updates: Iterable[object],
        *,
        admit: Callable[[object], bool] | None = None,
    ) -> DeltaStream:
        """Apply a batch of single-tuple updates as one transaction.

        ``updates`` is any iterable of :class:`~repro.storage.updates.Insertion`
        / :class:`~repro.storage.updates.Deletion` objects (duck-typed on
        ``relation`` / ``row`` / ``is_insertion``), applied in order with set
        semantics — inserting a present tuple or deleting an absent one is a
        no-op.  ``admit`` is an optional per-update predicate evaluated
        against the *running* state right before each update (the service's
        bounded admissibility check); rejected updates are skipped and counted
        on the returned stream.

        Every applied update maintains the relation's caches, secondary
        indexes, statistics and access-constraint indexes in place (the
        per-row observer path); after the whole batch, subscribed
        transaction-level observers receive the netted :class:`DeltaStream`
        exactly once.
        """
        stream = DeltaStream()
        with self._write_lock:
            self._applying = True
            try:
                for update in updates:
                    relation = self._relation(update.relation)
                    row = tuple(update.row)
                    if admit is not None and not admit(update):
                        stream.skipped_inadmissible += 1
                        continue
                    if update.is_insertion:
                        if row not in relation:
                            relation.add(row)
                            stream.record_insert(update.relation, row)
                    else:
                        if relation.discard(row):
                            stream.record_delete(update.relation, row)
            finally:
                # An exception mid-batch (bad arity, unknown relation) leaves
                # the earlier updates applied — observers must still see that
                # partial stream, or views and caches silently go stale.
                # Snapshots advance first (while _applying still suppresses
                # staleness rebuilds), then the flag drops, then observers run
                # — they can pin the already-published post-batch snapshot.
                try:
                    if not stream.is_empty:
                        self._advance_snapshots(stream)
                finally:
                    self._applying = False
                if not stream.is_empty:
                    self._notify_delta(stream)
        return stream

    def _advance_snapshots(self, stream: DeltaStream) -> None:
        if not self._snapshot_managers:
            return
        alive: list[weakref.ref] = []
        for reference in self._snapshot_managers:
            manager = reference()
            if manager is None:
                continue
            manager.advance(stream)
            alive.append(reference)
        if len(alive) != len(self._snapshot_managers):
            self._snapshot_managers = alive

    def enable_snapshots(self, layout, access_schema: AccessSchema):
        """Register (and return) an MVCC snapshot manager for this database.

        ``layout`` is a :class:`~repro.storage.snapshots.ShardingLayout`;
        the manager immediately builds and publishes version 0 from the
        current data and is advanced by every committed :meth:`apply`.
        Managers are held weakly, mirroring the observer protocols: a
        service that goes away stops paying the per-transaction advance.
        """
        from .snapshots import SnapshotManager

        with self._write_lock:
            manager = SnapshotManager(self, layout, access_schema)
            self._snapshot_managers.append(weakref.ref(manager))
        return manager

    def _notify_delta(self, stream: DeltaStream) -> None:
        if not self._delta_observers:
            return
        alive: list[weakref.ref] = []
        for reference in self._delta_observers:
            observer = reference()
            if observer is None:
                continue
            observer.on_delta(stream)
            alive.append(reference)
        if len(alive) != len(self._delta_observers):
            self._delta_observers = alive

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def relation(self, name: str) -> Relation:
        return self._relation(name)

    @property
    def facts(self) -> dict[str, frozenset[tuple]]:
        """The instance as a fact set (relation name -> set of tuples)."""
        return {name: relation.tuples for name, relation in self._relations.items()}

    @property
    def size(self) -> int:
        """Total number of tuples (|D| in the paper)."""
        return sum(len(relation) for relation in self._relations.values())

    def relation_sizes(self) -> dict[str, int]:
        return {name: len(relation) for name, relation in self._relations.items()}

    def statistics(self) -> dict[str, RelationStatistics]:
        """Per-relation statistics (each cached on its relation)."""
        return {name: relation.statistics() for name, relation in self._relations.items()}

    def active_domain(self) -> set[object]:
        domain: set[object] = set()
        for relation in self._relations.values():
            for row in relation:
                domain.update(row)
        return domain

    # ------------------------------------------------------------------ #
    # Access schema satisfaction
    # ------------------------------------------------------------------ #

    def satisfies(self, access_schema: AccessSchema) -> bool:
        """``D |= A``: the instance satisfies every access constraint."""
        return access_schema.satisfied_by(self.facts, self.schema)

    def violations(self, access_schema: AccessSchema) -> list[str]:
        return access_schema.violations(self.facts, self.schema)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_facts(
        cls, schema: DatabaseSchema, facts: Mapping[str, Iterable[tuple]]
    ) -> "Database":
        return cls(schema, facts)

    def copy(self) -> "Database":
        return Database.from_facts(self.schema, self.facts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        sizes = ", ".join(f"{n}={len(r)}" for n, r in self._relations.items())
        return f"Database({sizes})"
