"""Database instances: in-memory relations with set semantics.

A :class:`Database` is a set-semantics instance of a
:class:`repro.algebra.schema.DatabaseSchema`.  It exposes the ``facts``
mapping consumed by every evaluation and decision procedure in the library,
and implements ``D |= A`` satisfaction of access schemas.
"""

from __future__ import annotations

from typing import Collection, Iterable, Iterator, Mapping

from ..algebra.schema import DatabaseSchema, RelationSchema
from ..core.access import AccessSchema
from ..errors import SchemaError


class Relation:
    """An instance of a single relation schema (a set of tuples)."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self._tuples: set[tuple] = set()
        for row in tuples:
            self.add(row)

    def add(self, row: Iterable[object]) -> None:
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.schema.name!r} "
                f"expects {self.schema.arity}"
            )
        self._tuples.add(row)

    def add_many(self, rows: Iterable[Iterable[object]]) -> None:
        for row in rows:
            self.add(row)

    @property
    def tuples(self) -> frozenset[tuple]:
        return frozenset(self._tuples)

    def project(self, attributes: Iterable[str]) -> set[tuple]:
        positions = self.schema.positions(attributes)
        return {tuple(row[p] for p in positions) for row in self._tuples}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Relation({self.schema.name}, {len(self)} tuples)"


class Database:
    """A database instance over a schema.

    >>> from repro.algebra.schema import schema_from_spec
    >>> schema = schema_from_spec({"rating": ("mid", "rank")})
    >>> db = Database(schema)
    >>> db.add("rating", ("m1", 5))
    >>> db.size
    1
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        facts: Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        self.schema = schema
        self._relations: dict[str, Relation] = {
            relation.name: Relation(relation) for relation in schema
        }
        if facts:
            for name, rows in facts.items():
                self.add_many(name, rows)

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    def add(self, relation: str, row: Iterable[object]) -> None:
        self._relation(relation).add(row)

    def add_many(self, relation: str, rows: Iterable[Iterable[object]]) -> None:
        self._relation(relation).add_many(rows)

    def _relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def relation(self, name: str) -> Relation:
        return self._relation(name)

    @property
    def facts(self) -> dict[str, frozenset[tuple]]:
        """The instance as a fact set (relation name -> set of tuples)."""
        return {name: relation.tuples for name, relation in self._relations.items()}

    @property
    def size(self) -> int:
        """Total number of tuples (|D| in the paper)."""
        return sum(len(relation) for relation in self._relations.values())

    def relation_sizes(self) -> dict[str, int]:
        return {name: len(relation) for name, relation in self._relations.items()}

    def active_domain(self) -> set[object]:
        domain: set[object] = set()
        for relation in self._relations.values():
            for row in relation:
                domain.update(row)
        return domain

    # ------------------------------------------------------------------ #
    # Access schema satisfaction
    # ------------------------------------------------------------------ #

    def satisfies(self, access_schema: AccessSchema) -> bool:
        """``D |= A``: the instance satisfies every access constraint."""
        return access_schema.satisfied_by(self.facts, self.schema)

    def violations(self, access_schema: AccessSchema) -> list[str]:
        return access_schema.violations(self.facts, self.schema)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_facts(
        cls, schema: DatabaseSchema, facts: Mapping[str, Iterable[tuple]]
    ) -> "Database":
        return cls(schema, facts)

    def copy(self) -> "Database":
        return Database.from_facts(self.schema, self.facts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        sizes = ", ".join(f"{n}={len(r)}" for n, r in self._relations.items())
        return f"Database({sizes})"
