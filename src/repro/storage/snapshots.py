"""MVCC snapshots: immutable, hash-sharded versions of a database instance.

The PR 2 frozen-tuple views (``Relation.tuples``) gave single reads a stable
set to iterate; this module promotes them into real multi-version concurrency
control.  A :class:`DatabaseSnapshot` is a fully immutable picture of the
instance — per-relation row versions plus per-access-constraint index
versions — and :class:`SnapshotManager` publishes a new one per committed
:meth:`repro.storage.instance.Database.apply` transaction with a single
reference swap.  Readers pin the current snapshot for their whole execution,
so they never block on, nor observe, an in-flight write; writers never wait
for readers.  Building the next version is copy-on-write from the netted
:class:`~repro.storage.deltas.DeltaStream`: only the shards and index keys a
batch touched are copied.

Sharding rides the same structures.  A :class:`ShardingLayout` partitions
each relation's tuples and each access-constraint index's buckets by a
deterministic hash of the constraint's own ``X`` (key) columns into N
shards.  Constraints whose bound is small (``bound <= global_bound``, e.g.
``rating(mid -> rank, 1)``) or that have no key columns are *global*
reference data: the paper's bound caps their bucket size, so they are kept
shard-neutral and every worker reads them freely.  Because a fetch under
``R(X -> Y, N)`` is keyed on exactly the columns the partition hashes, each
fetch probes exactly one shard — rows and ``Dξ`` accounting are bit-identical
to unsharded execution *by construction*, and the shard set a bounded plan
touches can be derived statically from its fetch certificates
(:mod:`repro.analysis.sharding`).

A snapshot (or its metered, per-execution :meth:`DatabaseSnapshot.bound_to`
binding) satisfies the executor's fetch-provider protocol, so both the
interpreted kernel and the codegen tier's late-bound runtime resolve against
a pinned snapshot unchanged.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..algebra.schema import DatabaseSchema
from ..core.access import AccessConstraint, AccessSchema
from ..errors import AccessConstraintError
from .deltas import DeltaStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (instance imports us)
    from .instance import Database

_EMPTY: frozenset[tuple] = frozenset()


def shard_of(key: Sequence[object], shard_count: int) -> int:
    """The shard owning ``key`` — deterministic across processes.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), which
    would make committed shard-placement invariants unreproducible; CRC32 of
    the key's ``repr`` is stable, cheap, and spreads the realistic key types
    (strings, ints, tuples thereof) well enough for load balancing.
    """
    if shard_count <= 1:
        return 0
    return zlib.crc32(repr(tuple(key)).encode("utf-8")) % shard_count


@dataclass(frozen=True)
class ShardingLayout:
    """How one access schema partitions a database into N shards.

    ``partitioned`` holds the constraints whose index buckets (and owning
    relation's rows) are spread by ``hash(X-key) % shard_count``; every other
    constraint is served from the shard-neutral global tier.
    ``relation_positions`` maps each partitioned relation to the tuple
    positions of its primary partition columns (the ``X`` of its
    largest-bound partitioned constraint).
    """

    shard_count: int
    partitioned: frozenset[AccessConstraint]
    relation_positions: Mapping[str, tuple[int, ...]]

    @classmethod
    def derive(
        cls,
        schema: DatabaseSchema,
        access_schema: AccessSchema,
        shard_count: int,
        *,
        global_bound: int = 1,
    ) -> "ShardingLayout":
        """Classify every constraint of ``access_schema`` for ``shard_count`` shards.

        A constraint is partitioned when it has key columns and its bound
        exceeds ``global_bound`` — small-bound constraints are reference
        lookups whose buckets the paper caps at ``bound`` tuples, so
        replicating them globally costs little and keeps plans that chain
        through them single-shard.  With ``shard_count <= 1`` everything is
        global (one shard holds all data either way).
        """
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        partitioned: set[AccessConstraint] = set()
        if shard_count > 1:
            for constraint in access_schema:
                if constraint.x and constraint.bound > global_bound:
                    partitioned.add(constraint)
        positions: dict[str, tuple[int, ...]] = {}
        for constraint in sorted(
            partitioned, key=lambda c: (c.bound, c.relation, c.x)
        ):
            # Highest bound wins (sorted ascending, later overwrites): the
            # relation's rows co-locate with its coarsest partitioned index.
            relation = schema.relation(constraint.relation)
            positions[constraint.relation] = relation.positions(constraint.x)
        return cls(
            shard_count=shard_count,
            partitioned=frozenset(partitioned),
            relation_positions=positions,
        )

    def constraint_is_partitioned(self, constraint: AccessConstraint) -> bool:
        return constraint in self.partitioned

    def shard_of_key(self, key: Sequence[object]) -> int:
        return shard_of(key, self.shard_count)


#: Layout of an unsharded (single-shard) database — everything global.
def single_shard_layout() -> ShardingLayout:
    return ShardingLayout(
        shard_count=1, partitioned=frozenset(), relation_positions={}
    )


class RelationVersion:
    """One immutable version of a relation's rows, partitioned into shards.

    ``shards`` is a tuple of frozensets; unpartitioned (global) relations
    have exactly one.  ``apply`` builds the next version copy-on-write: only
    shards that a delta actually touches are rebuilt.
    """

    __slots__ = ("name", "positions", "shards", "_rows")

    def __init__(
        self,
        name: str,
        positions: tuple[int, ...] | None,
        shards: tuple[frozenset[tuple], ...],
    ) -> None:
        self.name = name
        self.positions = positions
        self.shards = shards
        self._rows: frozenset[tuple] | None = None

    @classmethod
    def build(
        cls,
        name: str,
        rows: Iterable[tuple],
        positions: tuple[int, ...] | None,
        shard_count: int,
    ) -> "RelationVersion":
        if positions is None or shard_count <= 1:
            return cls(name, None, (frozenset(rows),))
        buckets: list[set[tuple]] = [set() for _ in range(shard_count)]
        for row in rows:
            key = tuple(row[p] for p in positions)
            buckets[shard_of(key, shard_count)].add(row)
        return cls(name, positions, tuple(frozenset(b) for b in buckets))

    def shard_of_row(self, row: tuple) -> int:
        if self.positions is None:
            return 0
        key = tuple(row[p] for p in self.positions)
        return shard_of(key, len(self.shards))

    @property
    def rows(self) -> frozenset[tuple]:
        """All rows of this version (lazy union of the shard partitions)."""
        rows = self._rows
        if rows is None:
            rows = self.shards[0] if len(self.shards) == 1 else frozenset().union(
                *self.shards
            )
            self._rows = rows
        return rows

    def apply(
        self, inserted: frozenset[tuple], deleted: frozenset[tuple]
    ) -> "RelationVersion":
        """The next version after a netted delta (copy-on-write per shard)."""
        changed: dict[int, tuple[list[tuple], list[tuple]]] = {}
        for row in inserted:
            changed.setdefault(self.shard_of_row(row), ([], []))[0].append(row)
        for row in deleted:
            changed.setdefault(self.shard_of_row(row), ([], []))[1].append(row)
        shards = list(self.shards)
        for index, (added, removed) in changed.items():
            shards[index] = (shards[index] - frozenset(removed)) | frozenset(added)
        return RelationVersion(self.name, self.positions, tuple(shards))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)


class ConstraintIndexVersion:
    """One immutable version of an access-constraint index, sharded by key.

    The buckets mirror :class:`~repro.storage.indexes.AccessIndex`: per key,
    a mapping of XY-projection -> supporting-tuple count (so deleting one of
    several base rows behind the same projection keeps it alive).  Partitioned
    indexes spread their buckets by ``hash(key) % shard_count``; global ones
    keep a single shard.  ``lookup`` therefore probes exactly one shard and
    returns the same frozenset an unsharded index would.
    """

    __slots__ = (
        "constraint",
        "partitioned",
        "_x_positions",
        "_out_positions",
        "shards",
        "_frozen",
    )

    def __init__(
        self,
        constraint: AccessConstraint,
        partitioned: bool,
        x_positions: tuple[int, ...],
        out_positions: tuple[int, ...],
        shards: tuple[dict[tuple, dict[tuple, int]], ...],
        frozen: dict[tuple, frozenset[tuple]] | None = None,
    ) -> None:
        self.constraint = constraint
        self.partitioned = partitioned
        self._x_positions = x_positions
        self._out_positions = out_positions
        self.shards = shards
        # Per-key frozen lookup results.  This memo is the only mutable state
        # of a version; concurrent readers may race to fill the same key with
        # the same value, which is benign under the GIL.
        self._frozen = {} if frozen is None else frozen

    @classmethod
    def build(
        cls,
        constraint: AccessConstraint,
        schema: DatabaseSchema,
        rows: Iterable[tuple],
        partitioned: bool,
        shard_count: int,
    ) -> "ConstraintIndexVersion":
        relation = schema.relation(constraint.relation)
        x_positions = relation.positions(constraint.x)
        out_positions = relation.positions(constraint.output_attributes)
        count = shard_count if partitioned else 1
        shards: tuple[dict[tuple, dict[tuple, int]], ...] = tuple(
            {} for _ in range(count)
        )
        for row in rows:
            key = tuple(row[p] for p in x_positions)
            value = tuple(row[p] for p in out_positions)
            counts = shards[shard_of(key, count)].setdefault(key, {})
            counts[value] = counts.get(value, 0) + 1
        return cls(constraint, partitioned, x_positions, out_positions, shards)

    def shard_for_key(self, key: tuple) -> int | None:
        """The shard a lookup of ``key`` probes, or ``None`` for global data."""
        if not self.partitioned:
            return None
        return shard_of(key, len(self.shards))

    def lookup(self, key: tuple) -> frozenset[tuple]:
        frozen = self._frozen.get(key)
        if frozen is None:
            shard = self.shards[shard_of(key, len(self.shards))]
            bucket = shard.get(key)
            if bucket is None:
                # Misses are not memoised (unbounded key space), matching
                # AccessIndex.lookup.
                return _EMPTY
            frozen = frozenset(bucket)
            self._frozen[key] = frozen
        return frozen

    def apply(
        self, inserted: frozenset[tuple], deleted: frozenset[tuple]
    ) -> "ConstraintIndexVersion":
        """The next version after a netted delta on the base relation.

        Copy-on-write: only shards owning a changed key copy their outer
        bucket dict, and only changed keys copy their inner count dicts.  The
        frozen-lookup memo carries over minus the changed keys.
        """
        x_positions = self._x_positions
        out_positions = self._out_positions
        count = len(self.shards)
        changes: dict[int, dict[tuple, list[tuple[tuple, int]]]] = {}
        for rows, delta in ((inserted, 1), (deleted, -1)):
            for row in rows:
                key = tuple(row[p] for p in x_positions)
                value = tuple(row[p] for p in out_positions)
                changes.setdefault(shard_of(key, count), {}).setdefault(
                    key, []
                ).append((value, delta))
        shards = list(self.shards)
        frozen = dict(self._frozen)
        for shard_index, per_key in changes.items():
            shard = dict(shards[shard_index])
            for key, updates in per_key.items():
                counts = dict(shard.get(key, ()))
                for value, delta in updates:
                    remaining = counts.get(value, 0) + delta
                    if remaining <= 0:
                        counts.pop(value, None)
                    else:
                        counts[value] = remaining
                if counts:
                    shard[key] = counts
                else:
                    shard.pop(key, None)
                frozen.pop(key, None)
            shards[shard_index] = shard
        return ConstraintIndexVersion(
            self.constraint,
            self.partitioned,
            x_positions,
            out_positions,
            tuple(shards),
            frozen,
        )


class DatabaseSnapshot:
    """A fully immutable version of a database instance.

    Serves the executor's fetch-provider protocol directly (``fetch``), so a
    pinned snapshot slots in wherever an
    :class:`~repro.storage.indexes.IndexSet` does; :meth:`bound_to` wraps it
    with per-execution shard accounting for a given
    :class:`~repro.exec.iometer.IOMeter`.
    """

    __slots__ = ("version", "layout", "relations", "indexes")

    def __init__(
        self,
        version: int,
        layout: ShardingLayout,
        relations: Mapping[str, RelationVersion],
        indexes: Mapping[AccessConstraint, ConstraintIndexVersion],
    ) -> None:
        self.version = version
        self.layout = layout
        self.relations = relations
        self.indexes = indexes

    def index_for(self, constraint: AccessConstraint) -> ConstraintIndexVersion:
        try:
            return self.indexes[constraint]
        except KeyError as exc:
            raise AccessConstraintError(
                f"no snapshot index for constraint {constraint}; it is not "
                "part of the access schema"
            ) from exc

    def fetch(
        self, constraint: AccessConstraint, key: Sequence[object]
    ) -> frozenset[tuple]:
        """``D_{R:XY}(X = key)`` as of this snapshot version."""
        return self.index_for(constraint).lookup(tuple(key))

    def bound_to(self, meter: object) -> "BoundSnapshotReader":
        """A per-execution reader charging shard touches to ``meter``."""
        return BoundSnapshotReader(self, meter)

    @property
    def facts(self) -> dict[str, frozenset[tuple]]:
        return {name: version.rows for name, version in self.relations.items()}


class BoundSnapshotReader:
    """A snapshot pinned for one execution, recording shards touched.

    Satisfies the fetch-provider protocol; every probe of a *partitioned*
    index reports the owning shard to the execution's meter
    (``record_shard``), which is how actual shard sets become observable and
    comparable against the router's static prediction.  Global (reference)
    lookups are shard-neutral and report nothing.
    """

    __slots__ = ("snapshot", "_meter")

    def __init__(self, snapshot: DatabaseSnapshot, meter: object) -> None:
        self.snapshot = snapshot
        self._meter = meter

    def fetch(
        self, constraint: AccessConstraint, key: Sequence[object]
    ) -> frozenset[tuple]:
        index = self.snapshot.index_for(constraint)
        key = tuple(key)
        shard = index.shard_for_key(key)
        if shard is not None:
            self._meter.record_shard(shard)
        return index.lookup(key)


class SnapshotManager:
    """Builds, advances and publishes the snapshot chain of one database.

    ``advance`` is called by :meth:`Database.apply` after the storage layer
    reached the post-transaction state (still inside the write transaction):
    it derives the next version copy-on-write from the netted delta and
    publishes it with a single reference assignment — the only
    synchronisation point readers ever see.  ``stale``/``refresh`` cover
    out-of-band mutations (direct ``Relation.add`` outside a transaction):
    per-relation mutation counters are compared against the counters recorded
    at the last build, and drifted relations are rebuilt wholesale from live
    storage — never while a transaction is mid-batch.
    """

    def __init__(
        self,
        database: "Database",
        layout: ShardingLayout,
        constraints: Iterable[AccessConstraint],
    ) -> None:
        self.database = database
        self.layout = layout
        self._constraints = tuple(constraints)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._current = self._build_full(version=0)

    # ------------------------------------------------------------------ #

    @property
    def current(self) -> DatabaseSnapshot:
        return self._current

    def reader(self) -> DatabaseSnapshot:
        """Pin the currently published snapshot (alias for readability)."""
        return self._current

    # ------------------------------------------------------------------ #

    def _build_full(self, version: int) -> DatabaseSnapshot:
        layout = self.layout
        database = self.database
        relations: dict[str, RelationVersion] = {}
        counters: dict[str, int] = {}
        for name in database.schema.names:
            relation = database.relation(name)
            relations[name] = RelationVersion.build(
                name,
                relation.tuples,
                layout.relation_positions.get(name),
                layout.shard_count,
            )
            counters[name] = relation.mutation_count
        indexes = {
            constraint: ConstraintIndexVersion.build(
                constraint,
                database.schema,
                relations[constraint.relation].rows,
                layout.constraint_is_partitioned(constraint),
                layout.shard_count,
            )
            for constraint in self._constraints
        }
        self._counters = counters
        return DatabaseSnapshot(version, layout, relations, indexes)

    # ------------------------------------------------------------------ #

    def advance(self, stream: DeltaStream) -> DatabaseSnapshot:
        """Build and publish the next version from one committed delta."""
        with self._lock:
            current = self._current
            relations = dict(current.relations)
            indexes = dict(current.indexes)
            for name in stream.relations:
                inserted = stream.inserted(name)
                deleted = stream.deleted(name)
                if not inserted and not deleted:
                    continue
                relations[name] = relations[name].apply(inserted, deleted)
                for constraint, index in current.indexes.items():
                    if constraint.relation == name:
                        indexes[constraint] = index.apply(inserted, deleted)
                self._counters[name] = self.database.relation(name).mutation_count
            snapshot = DatabaseSnapshot(
                current.version + 1, current.layout, relations, indexes
            )
            self._current = snapshot  # the atomic publish
            return snapshot

    # ------------------------------------------------------------------ #

    def stale(self) -> bool:
        """Did any relation mutate outside the transactional write path?

        Cheap (one integer compare per relation) and suppressed while a
        transaction is mid-batch: ``advance`` records the post-batch counters
        before the write lock is released, so the transactional path never
        reads as stale.
        """
        if self.database._applying:
            return False
        counters = self._counters
        for name, relation in self.database._relations.items():
            if relation.mutation_count != counters.get(name, -1):
                return True
        return False

    def refresh(self) -> DatabaseSnapshot:
        """Rebuild drifted relations from live storage and publish.

        Takes the database's write lock first, so a rebuild never observes a
        transaction mid-batch; re-checks drift under the lock (another reader
        may have refreshed already, or the drift may have been absorbed by a
        transactional ``advance``).
        """
        with self.database._write_lock:
            with self._lock:
                current = self._current
                drifted = [
                    name
                    for name, relation in self.database._relations.items()
                    if relation.mutation_count != self._counters.get(name, -1)
                ]
                if not drifted:
                    return current
                layout = self.layout
                relations = dict(current.relations)
                indexes = dict(current.indexes)
                for name in drifted:
                    relation = self.database.relation(name)
                    relations[name] = RelationVersion.build(
                        name,
                        relation.tuples,
                        layout.relation_positions.get(name),
                        layout.shard_count,
                    )
                    for constraint, index in current.indexes.items():
                        if constraint.relation == name:
                            indexes[constraint] = ConstraintIndexVersion.build(
                                constraint,
                                self.database.schema,
                                relations[name].rows,
                                index.partitioned,
                                layout.shard_count,
                            )
                    self._counters[name] = relation.mutation_count
                snapshot = DatabaseSnapshot(
                    current.version + 1, layout, relations, indexes
                )
                self._current = snapshot
                return snapshot
