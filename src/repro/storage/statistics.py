"""Statistics over stored relations, and access-constraint discovery.

Two kinds of statistics live here:

* :class:`RelationStatistics` — per-relation cardinality and per-attribute
  distinct counts, cached on :class:`repro.storage.instance.Relation` and
  consumed by the greedy join orderers (:mod:`repro.exec.cq_compiler`) and
  the service planners to estimate how selective a probe is;
* access-constraint *mining*: the paper assumes constraints are "discovered
  from sample instances of R" (Section 4) — e.g. Facebook's 5000-friend cap,
  or "each person dines at most once per day".  For candidate attribute
  pairs ``(X, Y)`` of a relation the miner computes the tight bound

      N(X, Y) = max over X-values ā of |{t[Y] : t in D, t[X] = ā}|

  and keeps the candidates whose bound does not exceed a threshold.  The
  tight bound is also used by tests to double-check that generated workload
  data satisfies its intended access schema.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from .histograms import ColumnStatistics

__all__ = [
    "ColumnStatistics",
    "RelationStatistics",
    "relation_statistics",
    "statistics_fingerprint",
    "constraint_bound",
    "constraint_bounds",
    "discover_access_constraints",
    "verify_expected_schema",
]

if TYPE_CHECKING:  # imported lazily to avoid a cycle with .instance
    from .instance import Database, Relation


# --------------------------------------------------------------------------- #
# Per-relation statistics
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and per-attribute-position distinct counts of a relation.

    ``columns`` optionally carries the live per-column distribution
    summaries (equi-depth histogram + distinct sketch, see
    :mod:`repro.storage.histograms`).  It is excluded from equality on
    purpose: two statistics snapshots over the same data are equal whether
    or not histograms happen to be attached, and regardless of how their
    buckets fell — the invariants tests compare incrementally maintained
    statistics against freshly recomputed ones by ``==``.
    """

    cardinality: int
    distinct: tuple[int, ...]
    columns: tuple[ColumnStatistics, ...] | None = field(default=None, compare=False)

    def distinct_count(self, position: int) -> int:
        return self.distinct[position]

    def estimated_matches(self, positions: Iterable[int]) -> float:
        """Expected rows matching an equality probe on ``positions``.

        Classical independence estimate: cardinality scaled by ``1/d_p`` for
        every probed position (``d_p`` distinct values at that position).
        Positions outside the arity are ignored (such probes match nothing
        anyway and are handled upstream).
        """
        estimate = float(self.cardinality)
        for position in positions:
            if 0 <= position < len(self.distinct):
                estimate /= max(1, self.distinct[position])
        return estimate

    def estimated_matches_with(
        self,
        positions: Iterable[int],
        constants: Mapping[int, object] | None = None,
    ) -> float:
        """Skew-aware variant of :meth:`estimated_matches`.

        Positions probed with a *known constant* are estimated from that
        column's equi-depth histogram (``estimate_eq`` sees heavy hitters
        that the whole-column average hides); positions probed with a bound
        variable fall back to the average bucket.  Without attached column
        summaries this degrades to the classical estimate exactly.
        """
        if self.columns is None:
            return self.estimated_matches(positions)
        estimate = float(self.cardinality)
        cardinality = max(1, self.cardinality)
        for position in positions:
            if not 0 <= position < len(self.distinct):
                continue
            column = self.columns[position] if position < len(self.columns) else None
            if column is None:
                estimate /= max(1, self.distinct[position])
            elif constants is not None and position in constants:
                estimate *= column.estimate_eq(constants[position]) / cardinality
            else:
                estimate *= column.average_bucket() / cardinality
        return estimate


def relation_statistics(relation: "Relation") -> RelationStatistics:
    """Compute the statistics of one stored relation in a single pass."""
    arity = relation.schema.arity
    seen: list[set] = [set() for _ in range(arity)]
    cardinality = 0
    for row in relation:
        cardinality += 1
        for position in range(arity):
            seen[position].add(row[position])
    return RelationStatistics(
        cardinality=cardinality, distinct=tuple(len(values) for values in seen)
    )


def statistics_fingerprint(statistics: Mapping[str, RelationStatistics]) -> str:
    """A stable digest of a database's coarse statistics.

    The persistent plan store keys its payload on this fingerprint: a plan
    chosen for one data distribution is only reused while the relations'
    cardinalities and distinct counts still match.  Only the exact, coarse
    statistics participate — histogram bucketing is an implementation detail
    that may legitimately differ between two loads of the same data.
    """
    digest = hashlib.sha1()
    for name in sorted(statistics):
        stats = statistics[name]
        digest.update(
            f"{name}:{stats.cardinality}:{','.join(map(str, stats.distinct))};".encode()
        )
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Access-constraint mining
# --------------------------------------------------------------------------- #


def constraint_bound(
    database: "Database", relation: str, x: Sequence[str], y: Sequence[str]
) -> int:
    """The tight bound N for the candidate constraint ``relation(X -> Y, N)``.

    Returns 0 for an empty relation.
    """
    rel = database.relation(relation)
    x_positions = rel.schema.positions(x)
    y_positions = rel.schema.positions(y)
    groups: dict[tuple, set[tuple]] = {}
    for row in rel:
        key = tuple(row[p] for p in x_positions)
        groups.setdefault(key, set()).add(tuple(row[p] for p in y_positions))
    return max((len(values) for values in groups.values()), default=0)


def constraint_bounds(
    database: "Database", relation: str, x: Sequence[str], ys: Sequence[str]
) -> dict[str, int]:
    """Tight bounds ``N(X, y)`` for *every* candidate ``y`` in one pass.

    Groups the relation by the ``X``-key once and derives all per-``y``
    distinct counts from that single grouping — the miner sweeps many ``y``
    candidates per ``X``, so regrouping per pair (the historical behaviour)
    multiplied the work by the arity.
    """
    rel = database.relation(relation)
    x_positions = rel.schema.positions(x)
    y_positions = rel.schema.positions(ys)
    groups: dict[tuple, list[set]] = {}
    for row in rel:
        key = tuple(row[p] for p in x_positions)
        per_y = groups.get(key)
        if per_y is None:
            per_y = [set() for _ in y_positions]
            groups[key] = per_y
        for index, position in enumerate(y_positions):
            per_y[index].add(row[position])
    return {
        y: max((len(per_y[index]) for per_y in groups.values()), default=0)
        for index, y in enumerate(ys)
    }


def discover_access_constraints(
    database: "Database",
    max_x_size: int = 2,
    max_bound: int = 100,
    relations: Iterable[str] | None = None,
) -> AccessSchema:
    """Mine access constraints whose tight bound is at most ``max_bound``.

    For every relation, every attribute subset ``X`` with ``|X| <= max_x_size``
    (including the empty set) and every single attribute ``Y`` outside ``X``,
    the tight bound is computed; candidates with bound in ``[1, max_bound]``
    become constraints.  Subsumed constraints (same X, same Y, larger bound
    than an already kept one) are dropped.
    """
    discovered: list[AccessConstraint] = []
    names = tuple(relations) if relations is not None else database.schema.names
    for name in names:
        attributes = database.schema.relation(name).attributes
        if not len(database.relation(name)):
            continue
        for size in range(0, max_x_size + 1):
            for x in itertools.combinations(attributes, size):
                remaining = [a for a in attributes if a not in x]
                if not remaining:
                    continue
                bounds = constraint_bounds(database, name, x, remaining)
                for y_attr, bound in bounds.items():
                    if 1 <= bound <= max_bound:
                        discovered.append(AccessConstraint(name, x, (y_attr,), bound))
    return AccessSchema(_drop_subsumed(discovered))


def _drop_subsumed(constraints: list[AccessConstraint]) -> list[AccessConstraint]:
    """Drop constraints implied by another kept constraint with smaller X.

    A constraint ``R(X' -> Y, N')`` is redundant when some kept constraint
    ``R(X -> Y, N)`` has ``X ⊆ X'`` and ``N <= N'`` — any fetch the former can
    serve, the latter serves at least as cheaply only if X matches exactly, so
    we keep both unless X and Y coincide.  (Only exact duplicates with a worse
    bound are dropped; different X-sets give genuinely different indices.)
    """
    kept: dict[tuple[str, tuple[str, ...], tuple[str, ...]], AccessConstraint] = {}
    for constraint in constraints:
        key = (constraint.relation, constraint.x, constraint.y)
        existing = kept.get(key)
        if existing is None or constraint.bound < existing.bound:
            kept[key] = constraint
    return list(kept.values())


def verify_expected_schema(
    database: "Database", access_schema: AccessSchema
) -> dict[AccessConstraint, int]:
    """Return the tight bound measured for every constraint of ``access_schema``.

    Useful in tests and benchmarks to confirm that generated data indeed
    satisfies the intended constraints (measured bound <= declared bound).
    """
    measured: dict[AccessConstraint, int] = {}
    for constraint in access_schema:
        measured[constraint] = constraint_bound(
            database, constraint.relation, constraint.x, constraint.y
        )
    return measured
