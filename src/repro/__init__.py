"""Bounded query rewriting using views under access constraints.

A faithful, executable reproduction of

    Yang Cao, Wenfei Fan, Floris Geerts, Ping Lu.
    "Bounded Query Rewriting Using Views."  PODS 2016 / ACM TODS 43(1), 2018.

The package is organised as follows:

* :mod:`repro.algebra` — the query-language substrate: schemas, terms,
  conjunctive queries (CQ), unions of CQs (UCQ), full first-order queries
  (FO), views, containment, acyclicity and evaluation;
* :mod:`repro.storage` — in-memory instances, the indices realising access
  constraints, and constraint discovery;
* :mod:`repro.core` — the paper's contribution: access schemas, bounded
  output, A-equivalence, query plans with ``fetch``, conformance, the VBRP
  decision procedures, the effective syntax (topped and size-bounded
  queries) and cross-language rewriting;
* :mod:`repro.analysis` — static analysis: plan verification with
  boundedness certificates, compiled-delta-program checking, query lints and
  view-dependency stratification, fronted by :meth:`QueryService.explain`,
  :meth:`QueryService.lint` and ``QueryService(verify_plans=True)``;
* :mod:`repro.engine` — the serving layer built around
  :class:`~repro.engine.service.QueryService`: one entry point for
  CQ/UCQ/FO/string queries, a pluggable planner chain (heuristic builder,
  exact VBRP, topped-FO), an LRU plan cache with prepared queries, and
  selectable execution backends (in-memory plan executor or SQLite via SQL
  translation), plus incremental view/index maintenance;
* :mod:`repro.workloads` — Example 1.1's Graph Search workload, a synthetic
  CDR workload, random CQ generation and the reduction gadgets used in the
  lower-bound proofs.

Quickstart (Example 1.1)::

    from repro import QueryService
    from repro.workloads import graph_search as gs

    data = gs.generate(num_persons=10_000, num_movies=2_000)
    service = QueryService(data.database, gs.access_schema(), gs.views())
    answer = service.query(gs.query_q0())
    assert answer.used_bounded_plan
    print(len(answer.rows), "movies,", answer.tuples_fetched, "tuples fetched")

    # Same query again: planned once, served from the plan cache.
    assert service.query(gs.query_q0()).cache_hit

    # Prepared queries re-bind constants without re-planning.
    prepared = service.prepare(
        "Q0(mid) :- person(xp, name, 'NASA'), like(xp, mid, 'movie'), "
        "movie(mid, ym, :studio, '2014'), rating(mid, 5)"
    )
    rows = prepared.execute(studio="Universal").rows

``BoundedEngine`` (the per-language facade of earlier releases) remains
available as a deprecated shim over ``QueryService``.
"""

from .algebra import (
    ConjunctiveQuery,
    Constant,
    DatabaseSchema,
    EqualityAtom,
    FOQuery,
    Param,
    RelationAtom,
    RelationSchema,
    UnionQuery,
    Variable,
    View,
    ViewSet,
    parse_access_schema,
    parse_cq,
    parse_query,
    parse_ucq,
    schema_from_spec,
    variables,
)
from .analysis import (
    Diagnostic,
    Explanation,
    FetchCertificate,
    VerificationReport,
    analyze_view_dependencies,
    lint_query,
    verify_delta_program,
    verify_plan,
)
from .core import (
    AccessConstraint,
    AccessSchema,
    access_constraint,
    a_contained_in,
    a_equivalent,
    accuracy_sweep,
    alg_acq,
    alg_mp,
    analyze_topped,
    approximate_answer,
    conforms_to,
    covered_variables,
    decide_vbrp,
    decide_vbrp_plus,
    diversified_answer,
    execute_plan,
    has_bounded_output,
    is_bounded_rewriting,
    is_boundedly_evaluable,
    is_effectively_bounded,
    is_size_bounded,
    is_topped,
    make_size_bounded,
    minimize_cq,
    output_bound_estimate,
    plan_to_cq,
    plan_to_fo,
    plan_to_ucq,
    top_k_diversified,
    topped_plan,
)
from .engine import (
    Answer,
    BoundedEngine,
    CostBasedPlanner,
    ExactVBRPPlanner,
    HeuristicPlanner,
    PlanStore,
    MaintainedEngine,
    NaiveEngine,
    PreparedQuery,
    QueryService,
    ServiceStats,
    ToppedFOPlanner,
    available_planners,
    build_bounded_plan,
    plan_to_sql,
    register_planner,
)
from .engine.service import MaintenanceReport, ViewMaintainer
from .errors import (
    AccessConstraintError,
    BudgetExceededError,
    DeltaCompilationError,
    EvaluationError,
    PlanError,
    PlanStoreError,
    PlanVerificationError,
    QueryError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
)
from .storage import (
    Database,
    Deletion,
    DeltaStream,
    IndexSet,
    Insertion,
    UpdateBatch,
    discover_access_constraints,
    random_update_batch,
)

__version__ = "1.1.0"

__all__ = [
    "AccessConstraint",
    "AccessConstraintError",
    "AccessSchema",
    "Answer",
    "BoundedEngine",
    "BudgetExceededError",
    "ConjunctiveQuery",
    "Constant",
    "CostBasedPlanner",
    "Database",
    "DatabaseSchema",
    "Deletion",
    "DeltaCompilationError",
    "DeltaStream",
    "Diagnostic",
    "EqualityAtom",
    "EvaluationError",
    "ExactVBRPPlanner",
    "Explanation",
    "FOQuery",
    "FetchCertificate",
    "HeuristicPlanner",
    "IndexSet",
    "Insertion",
    "MaintainedEngine",
    "MaintenanceReport",
    "NaiveEngine",
    "Param",
    "PlanError",
    "PlanStore",
    "PlanStoreError",
    "PlanVerificationError",
    "PreparedQuery",
    "QueryError",
    "QueryService",
    "ReproError",
    "SchemaError",
    "RelationAtom",
    "RelationSchema",
    "ServiceStats",
    "ToppedFOPlanner",
    "UnionQuery",
    "UnsupportedQueryError",
    "UpdateBatch",
    "Variable",
    "VerificationReport",
    "View",
    "ViewMaintainer",
    "ViewSet",
    "__version__",
    "a_contained_in",
    "a_equivalent",
    "access_constraint",
    "accuracy_sweep",
    "alg_acq",
    "alg_mp",
    "analyze_topped",
    "analyze_view_dependencies",
    "approximate_answer",
    "available_planners",
    "build_bounded_plan",
    "conforms_to",
    "covered_variables",
    "decide_vbrp",
    "decide_vbrp_plus",
    "discover_access_constraints",
    "diversified_answer",
    "execute_plan",
    "has_bounded_output",
    "is_bounded_rewriting",
    "is_boundedly_evaluable",
    "is_effectively_bounded",
    "is_size_bounded",
    "is_topped",
    "lint_query",
    "make_size_bounded",
    "minimize_cq",
    "output_bound_estimate",
    "parse_access_schema",
    "parse_cq",
    "parse_query",
    "parse_ucq",
    "plan_to_cq",
    "plan_to_fo",
    "plan_to_sql",
    "plan_to_ucq",
    "random_update_batch",
    "register_planner",
    "schema_from_spec",
    "top_k_diversified",
    "topped_plan",
    "variables",
    "verify_delta_program",
    "verify_plan",
]
