"""Bounded query rewriting using views under access constraints.

A faithful, executable reproduction of

    Yang Cao, Wenfei Fan, Floris Geerts, Ping Lu.
    "Bounded Query Rewriting Using Views."  PODS 2016 / ACM TODS 43(1), 2018.

The package is organised as follows:

* :mod:`repro.algebra` — the query-language substrate: schemas, terms,
  conjunctive queries (CQ), unions of CQs (UCQ), full first-order queries
  (FO), views, containment, acyclicity and evaluation;
* :mod:`repro.storage` — in-memory instances, the indices realising access
  constraints, and constraint discovery;
* :mod:`repro.core` — the paper's contribution: access schemas, bounded
  output, A-equivalence, query plans with ``fetch``, conformance, the VBRP
  decision procedures, the effective syntax (topped and size-bounded
  queries) and cross-language rewriting;
* :mod:`repro.engine` — a practical engine answering queries with cached
  views plus constant-size fetches, and the naive full-scan baseline;
* :mod:`repro.workloads` — Example 1.1's Graph Search workload, a synthetic
  CDR workload, random CQ generation and the reduction gadgets used in the
  lower-bound proofs.

Quickstart (Example 1.1)::

    from repro import BoundedEngine
    from repro.workloads import graph_search as gs

    data = gs.generate(num_persons=10_000, num_movies=2_000)
    engine = BoundedEngine(data.database, gs.access_schema(), gs.views())
    answer = engine.answer(gs.query_q0())
    assert answer.used_bounded_plan
    print(len(answer.rows), "movies,", answer.tuples_fetched, "tuples fetched")
"""

from .algebra import (
    ConjunctiveQuery,
    Constant,
    DatabaseSchema,
    EqualityAtom,
    FOQuery,
    RelationAtom,
    RelationSchema,
    UnionQuery,
    Variable,
    View,
    ViewSet,
    parse_access_schema,
    parse_cq,
    parse_ucq,
    schema_from_spec,
    variables,
)
from .core import (
    AccessConstraint,
    AccessSchema,
    access_constraint,
    a_contained_in,
    a_equivalent,
    accuracy_sweep,
    alg_acq,
    alg_mp,
    analyze_topped,
    approximate_answer,
    conforms_to,
    covered_variables,
    decide_vbrp,
    decide_vbrp_plus,
    diversified_answer,
    execute_plan,
    has_bounded_output,
    is_bounded_rewriting,
    is_boundedly_evaluable,
    is_effectively_bounded,
    is_size_bounded,
    is_topped,
    make_size_bounded,
    minimize_cq,
    output_bound_estimate,
    plan_to_cq,
    plan_to_fo,
    plan_to_ucq,
    top_k_diversified,
    topped_plan,
)
from .engine import (
    BoundedEngine,
    MaintainedEngine,
    NaiveEngine,
    build_bounded_plan,
    plan_to_sql,
)
from .storage import (
    Database,
    Deletion,
    IndexSet,
    Insertion,
    UpdateBatch,
    discover_access_constraints,
    random_update_batch,
)

__version__ = "1.0.0"

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "BoundedEngine",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "DatabaseSchema",
    "Deletion",
    "EqualityAtom",
    "FOQuery",
    "IndexSet",
    "Insertion",
    "MaintainedEngine",
    "NaiveEngine",
    "RelationAtom",
    "RelationSchema",
    "UnionQuery",
    "UpdateBatch",
    "Variable",
    "View",
    "ViewSet",
    "__version__",
    "a_contained_in",
    "a_equivalent",
    "access_constraint",
    "accuracy_sweep",
    "alg_acq",
    "alg_mp",
    "analyze_topped",
    "approximate_answer",
    "build_bounded_plan",
    "conforms_to",
    "covered_variables",
    "decide_vbrp",
    "decide_vbrp_plus",
    "discover_access_constraints",
    "diversified_answer",
    "execute_plan",
    "has_bounded_output",
    "is_bounded_rewriting",
    "is_boundedly_evaluable",
    "is_effectively_bounded",
    "is_size_bounded",
    "is_topped",
    "make_size_bounded",
    "minimize_cq",
    "output_bound_estimate",
    "parse_access_schema",
    "parse_cq",
    "parse_ucq",
    "plan_to_cq",
    "plan_to_fo",
    "plan_to_sql",
    "plan_to_ucq",
    "random_update_batch",
    "schema_from_spec",
    "top_k_diversified",
    "topped_plan",
    "variables",
]
