"""Shared lowering pass: plan nodes → positional execution specs.

Both consumers of a physical plan — the interpreted operator compiler
(:mod:`repro.exec.plan_compiler`) and the codegen closure compiler
(:mod:`repro.exec.codegen`) — must agree *exactly* on how a plan node maps to
positional work: which attribute sits at which column, which predicates of a
``σ(×)`` become hash-join keys and which stay residual, and which access
constraint covers a fetch.  Divergence between the two tiers would not show
up as a crash but as silently different rows or a skewed ``Dξ`` count, so
those decisions live here, once, as plain data ("lowered" specs) that either
tier turns into operators or closures.

Nothing in this module touches data or builds callables that close over
state; everything is resolved from the plan tree and the access schema alone,
which is also what makes the specs safe to cache alongside a plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    FetchNode,
    Predicate,
    ProductNode,
    SelectNode,
)
from ..errors import PlanError
from .operators import Row, key_extractor, tuple_extractor

__all__ = [
    "AttributeCheck",
    "Check",
    "ConstantCheck",
    "LoweredFetch",
    "LoweredJoin",
    "Row",
    "attribute_position",
    "key_extractor",
    "lower_fetch",
    "lower_join",
    "lower_predicates",
    "tuple_extractor",
]


def attribute_position(attributes: tuple[str, ...], attribute: str, where: str) -> int:
    """``attributes.index`` with a typed error naming the offending node."""
    try:
        return attributes.index(attribute)
    except ValueError as exc:
        raise PlanError(
            f"{where} refers to attribute {attribute!r} which its input does "
            f"not produce (input has {attributes})"
        ) from exc


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConstantCheck:
    """Lowered ``attribute = value``: a position test against a constant.

    ``value`` may still be a :class:`~repro.algebra.terms.Param` placeholder;
    the interpreted tier rejects those at compile time (plans are bound
    first), while the codegen tier resolves them from the runtime bindings
    once per execution.
    """

    position: int
    value: object
    negated: bool


@dataclass(frozen=True)
class AttributeCheck:
    """Lowered ``left = right``: a test between two positions of one row."""

    left: int
    right: int
    negated: bool


Check = ConstantCheck | AttributeCheck


def lower_predicates(
    predicates: Sequence[Predicate], attributes: tuple[str, ...], where: str
) -> tuple[Check, ...]:
    """Resolve predicate attribute names to positions once, not once per row."""
    checks: list[Check] = []
    for predicate in predicates:
        if isinstance(predicate, AttributeEqualsConstant):
            checks.append(
                ConstantCheck(
                    attribute_position(attributes, predicate.attribute, where),
                    predicate.value,
                    predicate.negated,
                )
            )
        elif isinstance(predicate, AttributeEqualsAttribute):
            checks.append(
                AttributeCheck(
                    attribute_position(attributes, predicate.left, where),
                    attribute_position(attributes, predicate.right, where),
                    predicate.negated,
                )
            )
        else:  # pragma: no cover - defensive
            raise PlanError(f"unknown predicate type {type(predicate).__name__}")
    return tuple(checks)


# --------------------------------------------------------------------------- #
# σ(×) → hash join
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LoweredJoin:
    """``σ[l = r](left × right)`` as hash-join keys plus residual checks.

    ``left_key``/``right_key`` are the equated column positions in the left
    and right input layouts; ``residual`` holds the lowered remaining
    predicates over the *product* layout (left columns then right columns).
    Empty keys degrade to a cross product (single hash bucket), which is how
    both tiers realise a bare ``×``.
    """

    left_key: tuple[int, ...]
    right_key: tuple[int, ...]
    residual: tuple[Check, ...]


def lower_join(node: SelectNode) -> LoweredJoin:
    """Split the predicates of a selection over a product for a hash join.

    Predicates that do not equate a left attribute with a right attribute
    (and the negated ones) stay residual, so executing the join plus the
    residual filter is identical to the naive ``σ(×)`` evaluation.
    """
    product = node.child
    if not isinstance(product, ProductNode):  # pragma: no cover - defensive
        raise PlanError("lower_join expects a selection over a product")
    left_attrs = product.left.attributes
    right_attrs = product.right.attributes
    join_pairs: list[tuple[int, int]] = []
    residual: list[Predicate] = []
    for predicate in node.predicates:
        if isinstance(predicate, AttributeEqualsAttribute) and not predicate.negated:
            if predicate.left in left_attrs and predicate.right in right_attrs:
                join_pairs.append(
                    (left_attrs.index(predicate.left), right_attrs.index(predicate.right))
                )
                continue
            if predicate.right in left_attrs and predicate.left in right_attrs:
                join_pairs.append(
                    (left_attrs.index(predicate.right), right_attrs.index(predicate.left))
                )
                continue
        residual.append(predicate)
    return LoweredJoin(
        left_key=tuple(p for p, _ in join_pairs),
        right_key=tuple(p for _, p in join_pairs),
        residual=lower_predicates(tuple(residual), product.attributes, "selection"),
    )


# --------------------------------------------------------------------------- #
# fetch → index lookup
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LoweredFetch:
    """A fetch resolved to its covering constraint and positional layout.

    ``key_positions`` index the child's rows (empty for ``fetch(∅, R, Y)``);
    ``output_positions`` index the constraint provider's output layout and
    project it onto the fetch node's declared attributes.
    """

    constraint: AccessConstraint
    key_positions: tuple[int, ...]
    output_positions: tuple[int, ...]


def lower_fetch(node: FetchNode, access_schema: AccessSchema) -> LoweredFetch:
    """Resolve a fetch node's constraint and positional layout, or fail loudly."""
    constraint = node.covering_constraint(access_schema)
    if constraint is None:
        raise PlanError(
            f"fetch on {node.relation!r} has no covering access constraint; "
            "the plan does not conform to the access schema"
        )
    key_positions = (
        tuple(
            attribute_position(
                node.child.attributes, a, f"fetch on {node.relation!r} key"
            )
            for a in constraint.x
        )
        if node.child is not None
        else ()
    )
    provider_attributes = constraint.output_attributes
    output_positions = tuple(
        attribute_position(
            provider_attributes, a, f"fetch on {node.relation!r} output"
        )
        for a in node.attributes
    )
    return LoweredFetch(
        constraint=constraint,
        key_positions=key_positions,
        output_positions=output_positions,
    )
