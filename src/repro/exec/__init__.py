"""The execution kernel: iterator-based physical operators with I/O accounting.

Every evaluation path of the library — the bounded-plan executor
(:mod:`repro.core.plan_eval`), the CQ/UCQ evaluators
(:mod:`repro.algebra.evaluation`) and the in-memory service backend
(:mod:`repro.engine.service.backends`) — compiles down to the same small set
of Volcano-style physical operators defined here.  Operators follow a shared
``open()`` / ``next()`` / ``close()`` protocol and report every tuple that
crosses the storage boundary to a single :class:`IOMeter`, which preserves
the paper's exact ``Dξ`` accounting (``tuples_fetched`` for index fetches,
``view_tuples_scanned`` for free scans of cached views).

Layout:

* :mod:`.iometer` — the shared I/O accounting object;
* :mod:`.operators` — the physical operators (IndexLookup, Scan, HashJoin,
  LookupJoin, SemiJoin, Project, Select, Union, Distinct, Materialize);
* :mod:`.plan_compiler` — bounded :class:`~repro.core.plans.PlanNode` trees
  → operator trees (used by :class:`repro.core.plan_eval.PlanExecutor`);
* :mod:`.cq_compiler` — conjunctive queries → operator trees (used by
  :func:`repro.algebra.evaluation.evaluate_cq` and friends).

The compilers are imported directly by their consumers (not re-exported
here) to keep package initialisation free of import cycles.
"""

from .iometer import IOMeter
from .operators import (
    Distinct,
    HashJoin,
    IndexLookup,
    LookupJoin,
    Materialize,
    Operator,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)

__all__ = [
    "IOMeter",
    "Operator",
    "Scan",
    "IndexLookup",
    "LookupJoin",
    "HashJoin",
    "SemiJoin",
    "Project",
    "Select",
    "Union",
    "Distinct",
    "Materialize",
]
