"""Volcano-style physical operators (shared ``open``/``next``/``close``).

Rows are plain Python tuples; an operator's column layout is fixed by the
compiler that builds the tree, so operators themselves deal only in
positions and closures — no attribute names, no query terms.  ``next()``
returns the next row or ``None`` when the stream is exhausted; ``rows()``
drives a whole tree to completion.

Set semantics is *not* implicit: operators stream whatever their inputs
produce, and the compilers insert :class:`Distinct` exactly where the
algebra requires it (after projections and unions).  The only operators that
touch storage are :class:`IndexLookup` (charged to the
:class:`~repro.exec.iometer.IOMeter` — the paper's ``Dξ``) and :class:`Scan`
over a cached view (free, but counted as view-scan work); every other
operator is pure CPU over its inputs.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Collection, Iterable, Iterator, Sequence, cast

from .iometer import IOMeter

#: A data row.  Layouts are positional and fixed by the compilers.
Row = tuple[object, ...]


def tuple_extractor(positions: Sequence[int]) -> Callable[[Row], Row]:
    """``row -> tuple(row[p] for p in positions)`` at C speed where possible.

    Shared by the operator kernel, the lowering pass and the codegen tier —
    positional extraction must behave identically everywhere or the two
    execution tiers drift apart.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return cast(Callable[[Row], Row], itemgetter(*positions))


def key_extractor(positions: Sequence[int]) -> Callable[[Row], object]:
    """Join-key extractor; single positions yield scalars (both sides agree)."""
    if not positions:
        return lambda row: ()
    return cast(Callable[[Row], object], itemgetter(*positions))


_tuple_extractor = tuple_extractor
_key_extractor = key_extractor


class Operator:
    """Base class: a restartable iterator over rows.

    Subclasses set ``children`` in ``__init__`` and implement
    :meth:`_produce` as a generator pulling from the (already opened)
    children.  ``open()`` opens the tree depth-first; ``close()`` releases
    it; ``rows()`` is the one-shot driver used by the executors.
    """

    children: tuple["Operator", ...] = ()
    _iterator: Iterator[Row] | None = None

    def open(self) -> None:
        for child in self.children:
            child.open()
        self._iterator = self._produce()

    def next(self) -> Row | None:
        iterator = self._iterator
        if iterator is None:
            return None
        return next(iterator, None)

    def close(self) -> None:
        self._iterator = None
        for child in self.children:
            child.close()

    def _produce(self) -> Iterator[Row]:
        raise NotImplementedError

    def _input(self, child: "Operator") -> Iterator[Row]:
        """The row stream of an (already opened) child.

        Subclass ``_produce`` bodies consume the child's generator directly
        instead of calling ``child.next()`` per row — one Python frame per
        operator instead of a method call per row per level.
        """
        iterator = child._iterator
        assert iterator is not None, "child operator was not opened"
        return iterator

    def rows(self) -> Iterator[Row]:
        """Open, stream every row, close — the standard execution driver."""
        self.open()
        try:
            assert self._iterator is not None
            yield from self._iterator
        finally:
            self.close()


class Scan(Operator):
    """Scan a materialised collection of rows.

    With ``meter`` set, the scan is accounted as *view-scan* work at open
    time (cached views are free to read but their size is reported, exactly
    as the paper's cost model prescribes).  Base-relation scans used by the
    CQ evaluators pass no meter: the full-scan baseline charges scans through
    its own cost model, not per row.
    """

    def __init__(
        self,
        rows: Collection[Row] | Iterable[Row],
        meter: IOMeter | None = None,
    ) -> None:
        self._rows = rows
        self._meter = meter

    def open(self) -> None:
        if self._meter is not None:
            rows = self._rows
            if not isinstance(rows, Collection):
                rows = list(rows)
                self._rows = rows
            self._meter.record_view_scan(len(rows))
        super().open()

    def _produce(self) -> Iterator[Row]:
        yield from self._rows


class IndexLookup(Operator):
    """``fetch(X ∈ child, R, Y)`` — the only operator that touches base data.

    For every *distinct* key produced by the child (``S_j`` has set
    semantics, so duplicate keys cost nothing), the access-constraint index
    is probed through ``provider.fetch`` and every returned tuple is charged
    to the meter — this is precisely the bag ``Dξ`` of the paper.  Returned
    tuples are projected onto the requested output positions; the compiler
    wraps the lookup in :class:`Distinct` to restore set semantics.

    ``child=None`` models ``fetch(∅, R, Y)``: a single lookup under the
    empty key.
    """

    def __init__(
        self,
        child: Operator | None,
        relation: str,
        constraint: object,
        provider: object,
        key_positions: Sequence[int],
        output_positions: Sequence[int],
        meter: IOMeter,
    ) -> None:
        self.children = (child,) if child is not None else ()
        self._child = child
        self._relation = relation
        self._constraint = constraint
        self._provider = provider
        self._key_positions = tuple(key_positions)
        self._output_positions = tuple(output_positions)
        self._meter = meter

    def _keys(self) -> Iterator[Row]:
        if self._child is None:
            yield ()
            return
        seen: set[Row] = set()
        extract = _tuple_extractor(self._key_positions)
        for row in self._input(self._child):
            key = extract(row)
            if key not in seen:
                seen.add(key)
                yield key

    def _produce(self) -> Iterator[Row]:
        fetch = self._provider.fetch  # type: ignore[attr-defined]
        meter, relation = self._meter, self._relation
        project = _tuple_extractor(self._output_positions)
        for key in self._keys():
            fetched = fetch(self._constraint, key)
            meter.record_fetch(relation, len(fetched))
            for row in fetched:
                yield project(row)


class LookupJoin(Operator):
    """Index nested-loop join: probe a prebuilt lookup for every left row.

    ``lookup`` maps a key to the matching right-side rows (e.g. a secondary
    hash index of a stored relation — see
    :meth:`repro.storage.instance.Relation.index_on`); ``key`` extracts the
    probe key from a left row.  Emits ``left + right`` concatenations.
    Unlike :class:`IndexLookup` this never crosses the storage *accounting*
    boundary: it is the in-memory join primitive of the CQ evaluators, where
    scan costs are charged by the baseline cost model instead.
    """

    def __init__(
        self,
        left: Operator,
        lookup: Callable[[Row], Sequence[Row]],
        key: Callable[[Row], Row],
    ) -> None:
        self.children = (left,)
        self._left = left
        self._lookup = lookup
        self._key = key

    def _produce(self) -> Iterator[Row]:
        lookup, key = self._lookup, self._key
        for left_row in self._input(self._left):
            for right_row in lookup(key(left_row)):
                yield left_row + right_row


class HashJoin(Operator):
    """Hash join on positional keys; emits ``left + right`` concatenations.

    The right input is materialised into a hash table, then the left input
    streams through and probes it.  Empty key tuples degrade to a cross
    product (single bucket), which is how the plan compiler realises ``×``.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: Sequence[int],
        right_key: Sequence[int],
    ) -> None:
        self.children = (left, right)
        self._left = left
        self._right = right
        self._left_key = tuple(left_key)
        self._right_key = tuple(right_key)

    def _produce(self) -> Iterator[Row]:
        right_key = _key_extractor(self._right_key)
        table: dict[object, list[Row]] = {}
        for row in self._input(self._right):
            table.setdefault(right_key(row), []).append(row)
        left_key = _key_extractor(self._left_key)
        lookup = table.get
        for left_row in self._input(self._left):
            bucket = lookup(left_key(left_row))
            if bucket:
                for right_row in bucket:
                    yield left_row + right_row


class SemiJoin(Operator):
    """Semi-join (``anti=False``) or anti-semi-join (``anti=True``).

    Keeps the left rows whose key does (not) appear among the right keys —
    the reducer of Yannakakis' algorithm, and (keyed on the whole row) the
    realisation of set difference.  With empty keys this degrades to the
    textbook special case: everything passes iff the right side is
    (non-)empty.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: Sequence[int],
        right_key: Sequence[int],
        anti: bool = False,
    ) -> None:
        self.children = (left, right)
        self._left = left
        self._right = right
        self._left_key = tuple(left_key)
        self._right_key = tuple(right_key)
        self._anti = anti

    def _produce(self) -> Iterator[Row]:
        right_key = _key_extractor(self._right_key)
        keys = {right_key(row) for row in self._input(self._right)}
        left_key, anti = _key_extractor(self._left_key), self._anti
        for row in self._input(self._left):
            if (left_key(row) in keys) != anti:
                yield row


class Project(Operator):
    """Positional projection; ``mapper`` overrides it for computed outputs.

    Projection is not injective, so the compilers follow it with
    :class:`Distinct` wherever the algebra's set semantics requires.
    """

    def __init__(
        self,
        child: Operator,
        positions: Sequence[int] | None = None,
        mapper: Callable[[Row], Row] | None = None,
    ) -> None:
        if (positions is None) == (mapper is None):
            raise ValueError("Project takes exactly one of positions= or mapper=")
        self.children = (child,)
        self._child = child
        if mapper is None:
            assert positions is not None
            mapper = _tuple_extractor(tuple(positions))
        self._mapper = mapper

    def _produce(self) -> Iterator[Row]:
        mapper = self._mapper
        return map(mapper, self._input(self._child))


class Select(Operator):
    """Filter rows through a predicate closure."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool]) -> None:
        self.children = (child,)
        self._child = child
        self._predicate = predicate

    def _produce(self) -> Iterator[Row]:
        predicate = self._predicate
        return filter(predicate, self._input(self._child))


class Union(Operator):
    """Concatenate input streams (bag union; wrap in :class:`Distinct` for ∪)."""

    def __init__(self, inputs: Sequence[Operator]) -> None:
        self.children = tuple(inputs)

    def _produce(self) -> Iterator[Row]:
        for child in self.children:
            yield from self._input(child)


class Distinct(Operator):
    """Drop duplicate rows (streaming, with a seen-set)."""

    def __init__(self, child: Operator) -> None:
        self.children = (child,)
        self._child = child

    def _produce(self) -> Iterator[Row]:
        seen: set[Row] = set()
        add = seen.add
        for row in self._input(self._child):
            if row not in seen:
                add(row)
                yield row


class Materialize(Operator):
    """Materialise the child on open and replay the buffered rows.

    A restartable pipeline breaker: for subtrees that must be fully
    evaluated before their consumer starts, or consumed more than once
    without re-running the child.  (The Yannakakis evaluator keeps its
    reduction state as explicit row lists instead — the semi-join passes
    replace inputs wholesale — so this operator mainly serves hand-built
    operator trees and tooling.)  ``materialized`` exposes the buffer after
    open.
    """

    def __init__(self, child: Operator) -> None:
        self.children = (child,)
        self._child = child
        self.materialized: list[Row] = []

    def open(self) -> None:
        super().open()
        self.materialized = list(self._input(self._child))

    def _produce(self) -> Iterator[Row]:
        yield from self.materialized
