"""Compile conjunctive queries to operator trees over a facts source.

The CQ evaluators of :mod:`repro.algebra.evaluation` are thin front ends
over this module: a (normalised) conjunctive query becomes a left-deep chain
of :class:`~repro.exec.operators.LookupJoin` operators whose intermediate
rows are assignments to the query's variables, in a fixed column order (the
*variable schema*).

The facts source abstracts over the two shapes evaluation accepts:

* a plain fact mapping ``relation name -> collection of tuples`` (tableaux,
  canonical databases, test fixtures) — per-atom hash indexes are built on
  the fly, exactly like the previous binding-based evaluator did;
* a :class:`repro.storage.instance.Database` (duck-typed, no storage import)
  — joins probe the relation's *cached* secondary hash indexes
  (:meth:`~repro.storage.instance.Relation.index_on`), and the greedy join
  order consults per-relation cardinality/distinct statistics instead of raw
  relation sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Collection, Mapping, Sequence, cast

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.terms import Constant, Term, Variable
from ..errors import EvaluationError, SchemaError
from .operators import Distinct, LookupJoin, Operator, Project, Row, Scan, Select

_EMPTY_LOOKUP: Callable[[Row], Sequence[Row]] = lambda key: ()  # noqa: E731


class FactsSource:
    """Uniform rows / index / statistics access over a database or fact map.

    The database side is duck-typed (``relation`` + ``schema`` attributes) so
    this module never imports :mod:`repro.storage`; ``_database`` is
    deliberately ``Any`` for the same reason.
    """

    def __init__(self, facts: object) -> None:
        self._database: Any
        if hasattr(facts, "relation") and hasattr(facts, "schema"):
            self._database = facts
            self._mapping: Mapping[str, Collection[Row]] | None = None
        else:
            self._database = None
            self._mapping = cast(Mapping[str, Collection[Row]], facts)

    # ------------------------------------------------------------------ #

    def _relation(self, name: str) -> Any:
        """The stored relation behind ``name``, or ``None`` when absent."""
        if self._database is None:
            return None
        try:
            return self._database.relation(name)
        except (SchemaError, KeyError):  # unknown relation: same as a missing key
            return None

    def rows(self, name: str) -> Collection[Row]:
        if self._database is not None:
            relation = self._relation(name)
            return cast(Collection[Row], relation) if relation is not None else ()
        mapping = self._mapping
        assert mapping is not None
        return mapping.get(name, ())

    def size(self, name: str) -> int:
        return len(self.rows(name))

    def statistics(self, name: str) -> Any:
        """Per-relation statistics, when the source maintains them."""
        relation = self._relation(name)
        if relation is None:
            return None
        statistics = getattr(relation, "statistics", None)
        return statistics() if callable(statistics) else None

    def lookup(
        self, name: str, positions: Sequence[int], arity: int
    ) -> Callable[[Row], Sequence[Row]]:
        """A key -> matching-rows probe for ``name`` keyed on ``positions``.

        Database-backed sources serve the relation's cached secondary hash
        index (built lazily, maintained incrementally under updates); plain
        mappings build an ephemeral index per call — the same cost the
        previous evaluator paid per join.  Rows whose arity differs from the
        atom's are excluded, as before.
        """
        relation = self._relation(name)
        if relation is not None:
            if relation.schema.arity != arity:
                return _EMPTY_LOOKUP
            index = relation.index_on(positions)
            # The cast is hoisted around the lambda (not inside it): resolved
            # lookups sit on the maintenance hot path, and a per-call
            # ``cast(Sequence[Row], ...)`` re-evaluates the subscripted alias
            # on every probe.
            return cast(
                "Callable[[Row], Sequence[Row]]",
                lambda key, _get=index.get: _get(key, ()),
            )
        index_map: dict[Row, list[Row]] = {}
        key_positions = tuple(positions)
        for row in self.rows(name):
            if len(row) != arity:
                continue
            index_map.setdefault(tuple(row[p] for p in key_positions), []).append(row)
        return lambda key: index_map.get(key, ())


# --------------------------------------------------------------------------- #
# Greedy join ordering (statistics-aware)
# --------------------------------------------------------------------------- #


def order_atoms(
    atoms: Sequence[RelationAtom], source: FactsSource
) -> list[RelationAtom]:
    """Greedy join order: selective atoms first, then stay connected.

    The historical score preferred atoms with many bound terms, breaking
    ties by raw relation size.  Over a statistics-maintaining source the tie
    break uses the *estimated* number of matching rows instead — cardinality
    scaled by the distinct counts of the bound columns — so a huge relation
    probed on a near-key column sorts before a smaller one probed on a
    low-selectivity column.
    """
    remaining = list(atoms)
    ordered: list[RelationAtom] = []
    bound: set[Variable] = set()

    def score(atom: RelationAtom) -> tuple[int, float, int]:
        size = source.size(atom.relation)
        bound_positions = [
            position
            for position, term in enumerate(atom.terms)
            if isinstance(term, Constant) or term in bound
        ]
        statistics = source.statistics(atom.relation)
        if statistics is None:
            estimate = float(size)
        else:
            estimate = float(statistics.estimated_matches(bound_positions))
        return (-len(bound_positions), estimate, size)

    while remaining:
        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


# --------------------------------------------------------------------------- #
# Atom access paths
# --------------------------------------------------------------------------- #


def atom_scan(
    atom: RelationAtom, source: FactsSource
) -> tuple[Operator, tuple[Variable, ...]]:
    """Scan one atom: matching rows projected onto its (distinct) variables.

    Constant positions are checked (served from a secondary index when the
    source has one), repeated variables are enforced, and the output columns
    are the atom's variables in first-occurrence order.
    """
    arity = len(atom.terms)
    constant_positions: list[tuple[int, object]] = []
    first_occurrence: dict[Variable, int] = {}
    duplicate_pairs: list[tuple[int, int]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_positions.append((position, term.value))
        elif term in first_occurrence:
            duplicate_pairs.append((first_occurrence[term], position))
        else:
            first_occurrence[term] = position
    variables = tuple(first_occurrence)

    stored = source._relation(atom.relation)
    base: Operator
    constants = tuple(constant_positions)
    need_arity_check = stored is None
    if stored is not None and stored.schema.arity != arity:
        base = Scan(())
        constants = ()
    elif constants and stored is not None:
        # Serve the constant selection from the relation's secondary index.
        lookup = source.lookup(atom.relation, tuple(p for p, _ in constants), arity)
        base = Scan(lookup(tuple(v for _, v in constants)))
        constants = ()  # already enforced by the index key
    else:
        base = Scan(source.rows(atom.relation))

    if constants or duplicate_pairs or need_arity_check:

        def predicate(
            row: Row,
            arity: int = arity,
            constants: tuple[tuple[int, object], ...] = constants,
            checks: tuple[tuple[int, int], ...] = tuple(duplicate_pairs),
            check_arity: bool = need_arity_check,
        ) -> bool:
            if check_arity and len(row) != arity:
                return False
            for position, value in constants:
                if row[position] != value:
                    return False
            for first, later in checks:
                if row[first] != row[later]:
                    return False
            return True

        base = Select(base, predicate)
    return Project(base, tuple(first_occurrence.values())), variables


def join_atom(
    current: Operator,
    schema: tuple[Variable, ...],
    atom: RelationAtom,
    source: FactsSource,
) -> tuple[Operator, tuple[Variable, ...]]:
    """Extend the variable rows of ``current`` with the matches of ``atom``.

    Probes an index keyed on the atom's bound positions (constants and
    variables already in ``schema``), enforces repeated fresh variables, and
    appends the fresh variables to the schema.
    """
    arity = len(atom.terms)
    width = len(schema)
    position_of = {variable: index for index, variable in enumerate(schema)}

    bound_positions: list[int] = []
    key_spec: list[tuple[int | None, object]] = []  # (schema position, constant)
    fresh_first: dict[Variable, int] = {}
    duplicate_pairs: list[tuple[int, int]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            bound_positions.append(position)
            key_spec.append((None, term.value))
        elif term in position_of:
            bound_positions.append(position)
            key_spec.append((position_of[term], None))
        elif term in fresh_first:
            duplicate_pairs.append((fresh_first[term], position))
        else:
            fresh_first[term] = position

    lookup = source.lookup(atom.relation, tuple(bound_positions), arity)
    spec = tuple(key_spec)

    def key(row: Row, spec: tuple[tuple[int | None, object], ...] = spec) -> Row:
        return tuple(row[i] if i is not None else v for i, v in spec)

    joined: Operator = LookupJoin(current, lookup, key)
    if duplicate_pairs:

        def predicate(
            row: Row,
            pairs: tuple[tuple[int, int], ...] = tuple(duplicate_pairs),
            width: int = width,
        ) -> bool:
            return all(row[width + first] == row[width + later] for first, later in pairs)

        joined = Select(joined, predicate)
    kept = tuple(range(width)) + tuple(width + p for p in fresh_first.values())
    return Project(joined, kept), schema + tuple(fresh_first)


# --------------------------------------------------------------------------- #
# Whole-query pipelines
# --------------------------------------------------------------------------- #


def cq_pipeline(
    normalized: ConjunctiveQuery, source: FactsSource
) -> tuple[Operator, tuple[Variable, ...]]:
    """A left-deep join pipeline for a normalised CQ with at least one atom.

    The output rows assign values to the returned variable schema; head
    projection (and its set semantics) is layered on by
    :func:`head_projection`.
    """
    operator: Operator | None = None
    schema: tuple[Variable, ...] = ()
    for atom in order_atoms(normalized.atoms, source):
        if operator is None:
            operator, schema = atom_scan(atom, source)
        else:
            operator, schema = join_atom(operator, schema, atom, source)
    assert operator is not None
    return operator, schema


def head_projection(
    operator: Operator, schema: tuple[Variable, ...], head: Sequence[Term]
) -> Operator:
    """Project variable rows onto the query head (set semantics).

    Head constants become literal columns.  A head variable with no column
    in the schema is *unsafe*; mirroring the historical evaluator, the error
    is raised only when a row actually reaches the projection — a query with
    an empty answer never trips it.
    """
    spec: list[tuple[int | None, object]] = []
    unsafe: Term | None = None
    position_of = {variable: index for index, variable in enumerate(schema)}
    for term in head:
        if isinstance(term, Constant):
            spec.append((None, term.value))
        elif term in position_of:
            spec.append((position_of[term], None))
        else:
            unsafe = term
            break

    if unsafe is not None:
        term = unsafe

        def fail(row: Row) -> Row:
            raise EvaluationError(f"unsafe head variable {term} has no binding")

        return Project(operator, mapper=fail)

    frozen = tuple(spec)

    def mapper(row: Row, spec: tuple[tuple[int | None, object], ...] = frozen) -> Row:
        return tuple(row[i] if i is not None else v for i, v in spec)

    return Distinct(Project(operator, mapper=mapper))
