"""I/O accounting shared by every operator of the execution kernel.

The paper charges a bounded plan only for the tuples it retrieves from the
underlying database through access-constraint indices — the bag ``Dξ`` of
Section 2.  :class:`IOMeter` is the single place where that accounting
happens: :class:`~repro.exec.operators.IndexLookup` records every tuple an
index lookup returns, :class:`~repro.exec.operators.Scan` over a cached view
records free view-scan work, and everything else is pure CPU.

``repro.core.plan_eval.FetchStats`` is an alias of this class, so existing
callers of the plan executor keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOMeter:
    """Accounting of the data fetched from the underlying database (``Dξ``).

    ``tuples_fetched`` counts every tuple returned by every index lookup (bag
    semantics, as in the paper's definition of ``Dξ``); ``fetch_calls`` counts
    the index lookups themselves; ``per_relation`` breaks the tuple count down
    by base relation.  View scans contribute ``view_tuples_scanned`` but no
    I/O.  Under sharded snapshot serving, ``shards_touched`` collects the ids
    of the partitions that index lookups actually probed (global/reference
    lookups are shard-neutral and record nothing) — the observable side of
    the router's static shard-set prediction.
    """

    fetch_calls: int = 0
    tuples_fetched: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)
    view_tuples_scanned: int = 0
    shards_touched: set[int] = field(default_factory=set)

    def record_fetch(self, relation: str, count: int) -> None:
        self.fetch_calls += 1
        self.tuples_fetched += count
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def record_view_scan(self, count: int) -> None:
        self.view_tuples_scanned += count

    def record_shard(self, shard: int) -> None:
        self.shards_touched.add(shard)

    def merged_with(self, other: "IOMeter") -> "IOMeter":
        merged = IOMeter(
            fetch_calls=self.fetch_calls + other.fetch_calls,
            tuples_fetched=self.tuples_fetched + other.tuples_fetched,
            per_relation=dict(self.per_relation),
            view_tuples_scanned=self.view_tuples_scanned + other.view_tuples_scanned,
            shards_touched=self.shards_touched | other.shards_touched,
        )
        for relation, count in other.per_relation.items():
            merged.per_relation[relation] = merged.per_relation.get(relation, 0) + count
        return merged
