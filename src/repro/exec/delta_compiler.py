"""Compile view definitions into per-relation delta plans — once.

The incremental-maintenance layer used to re-derive a fresh anchored delta
query per single tuple and push it through the generic CQ evaluator
(normalisation, greedy ordering and pipeline construction per update).  This
module moves all of that work to *compile time*, DBToaster-style: each CQ
disjunct of a view is compiled once into

* one :class:`DeltaRule` per body atom — given the net delta rows of that
  atom's relation, it streams the head rows derivable *through* those rows,
  with multiplicities (one output per valuation, no ``Distinct``), as a
  pipeline of kernel operators (:class:`~repro.exec.operators.Scan` →
  :class:`~repro.exec.operators.Select` →
  :class:`~repro.exec.operators.Project` →
  :class:`~repro.exec.operators.LookupJoin` chain);
* one :class:`SupportCheck` — an existence test "is this head row still
  derivable?", used by the DRed fallback after over-deletion.

Only the *lookups* are late-bound: every stage resolves its key→rows probe
through a ``LookupResolver`` at execution time, so the same compiled rule
runs against the live secondary indexes of the database, against the
reconstructed *pre-transaction* state (telescoped counting over multi-relation
batches) or against the live-plus-deleted superset (DRed candidate
generation).  Resolving per execution also keeps the rules correct when a
relation evicts and lazily rebuilds a cached secondary index.

Which maintenance strategy a view gets:

* **counting** (:func:`counting_eligible`) — single-CQ views without
  self-joins keep a ``row → number of derivations`` multiset; deletions just
  decrement counts, and a row leaves the view exactly when its count reaches
  zero.  Unsound in general for self-joins (one base tuple can appear in
  several atom positions of the same valuation) and deliberately not used
  across UCQ disjuncts, so
* **DRed** — everything else CQ/UCQ-shaped over-deletes the rows whose
  derivations may use a deleted tuple (candidates intersected with the
  current view through a :class:`~repro.exec.operators.SemiJoin`) and
  re-derives survivors through the compiled :class:`SupportCheck`.
"""

from __future__ import annotations

from typing import Callable, Collection, Iterator, Sequence

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.terms import Constant, Variable
from ..errors import DeltaCompilationError
from .operators import (
    LookupJoin,
    Operator,
    Project,
    Row,
    Scan,
    Select,
    tuple_extractor,
)

#: ``resolver(relation, key_positions, arity) -> (key -> matching rows)``.
#: Implementations decide *which state* of the relation the probe sees.
LookupResolver = Callable[[str, tuple[int, ...], int], Callable[[Row], Sequence[Row]]]

#: One head/key column: either a pipeline position or a pinned constant.
ColumnSpec = tuple[int | None, object]


# --------------------------------------------------------------------------- #
# Stage compilation (the static half of cq_compiler.join_atom)
# --------------------------------------------------------------------------- #


class _JoinStage:
    """One precompiled ``LookupJoin`` extension of a variable-row pipeline.

    The stage carries both execution forms: :meth:`attach` builds the
    reference operator pipeline (what the delta-program verifier inspects),
    :meth:`extend` is the compiled fast path — one eager loop with the
    duplicate-variable filter and the fresh-column projection inlined,
    producing exactly the rows the operator pipeline would stream.
    """

    __slots__ = (
        "relation",
        "arity",
        "bound_positions",
        "_key",
        "_dup_predicate",
        "_pairs",
        "_append",
        "kept",
        "fresh_variables",
    )

    def __init__(
        self,
        schema: tuple[Variable, ...],
        atom: RelationAtom,
    ) -> None:
        self.relation = atom.relation
        self.arity = len(atom.terms)
        width = len(schema)
        position_of = {variable: index for index, variable in enumerate(schema)}

        bound_positions: list[int] = []
        key_spec: list[ColumnSpec] = []  # (pipeline position, constant)
        fresh_first: dict[Variable, int] = {}
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(position)
                key_spec.append((None, term.value))
            elif term in position_of:
                bound_positions.append(position)
                key_spec.append((position_of[term], None))
            elif term in fresh_first:
                duplicate_pairs.append((fresh_first[term], position))
            else:
                fresh_first[term] = position
        self.bound_positions = tuple(bound_positions)

        self._key = _spec_extractor(tuple(key_spec))
        if duplicate_pairs:
            pairs = tuple(duplicate_pairs)

            def predicate(
                row: Row,
                pairs: tuple[tuple[int, int], ...] = pairs,
                width: int = width,
            ) -> bool:
                return all(row[width + a] == row[width + b] for a, b in pairs)

            self._dup_predicate: Callable[[Row], bool] | None = predicate
        else:
            self._dup_predicate = None
        self._pairs = tuple(duplicate_pairs)
        self._append = tuple_extractor(tuple(fresh_first.values()))
        self.kept = tuple(range(width)) + tuple(width + p for p in fresh_first.values())
        self.fresh_variables = tuple(fresh_first)

    def attach(self, operator: Operator, resolve: LookupResolver) -> Operator:
        lookup = resolve(self.relation, self.bound_positions, self.arity)
        joined: Operator = LookupJoin(operator, lookup, self._key)
        if self._dup_predicate is not None:
            joined = Select(joined, self._dup_predicate)
        return Project(joined, self.kept)

    def extend(self, rows: Sequence[Row], resolve: LookupResolver) -> list[Row]:
        """Compiled fast path: the rows :meth:`attach`'s pipeline would emit.

        Eagerly extends every input row with the matching right rows'
        fresh columns — bag semantics preserved, duplicate-variable pairs
        checked on the right row before it contributes.
        """
        lookup = resolve(self.relation, self.bound_positions, self.arity)
        key = self._key
        append = self._append
        out: list[Row] = []
        emit = out.append
        if self._pairs:
            pairs = self._pairs
            for left_row in rows:
                for right_row in lookup(key(left_row)):
                    if all(right_row[a] == right_row[b] for a, b in pairs):
                        emit(left_row + append(right_row))
        else:
            for left_row in rows:
                for right_row in lookup(key(left_row)):
                    emit(left_row + append(right_row))
        return out


def _order_remaining(
    bound: set[Variable], atoms: Sequence[RelationAtom]
) -> list[RelationAtom]:
    """Greedy static join order: stay connected, most-bound atoms first.

    Compile-time ordering cannot consult live statistics (the rule outlives
    any one database state), so it optimises what it can see: the number of
    bound positions, then the number of fresh variables introduced.
    """
    remaining = list(atoms)
    ordered: list[RelationAtom] = []
    bound = set(bound)
    while remaining:

        def score(atom: RelationAtom) -> tuple[int, int, int]:
            bound_count = sum(
                1
                for term in atom.terms
                if isinstance(term, Constant) or term in bound
            )
            fresh = len({t for t in atom.variables if t not in bound})
            return (-bound_count, fresh, len(atom.terms))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


def _head_spec(
    schema: tuple[Variable, ...],
    head: Sequence[object],
    view_name: str,
) -> tuple[ColumnSpec, ...]:
    """Positional head-projection spec (the static, inspectable half)."""
    position_of = {variable: index for index, variable in enumerate(schema)}
    spec: list[ColumnSpec] = []
    for term in head:
        if isinstance(term, Constant):
            spec.append((None, term.value))
        elif term in position_of:
            spec.append((position_of[term], None))
        else:
            raise DeltaCompilationError(
                f"view disjunct {view_name!r}: head term {term} is not bound "
                "by the body; unsafe views cannot be incrementally maintained",
                view_name=view_name,
            )
    return tuple(spec)


def _spec_extractor(spec: tuple[ColumnSpec, ...]) -> Callable[[Row], Row]:
    """Spec → row mapper; all-positional specs become plain ``itemgetter``s."""
    if all(position is not None for position, _ in spec):
        return tuple_extractor(tuple(position for position, _ in spec if position is not None))

    def mapper(row: Row, spec: tuple[ColumnSpec, ...] = spec) -> Row:
        return tuple(row[i] if i is not None else v for i, v in spec)

    return mapper


def _spec_mapper(spec: tuple[ColumnSpec, ...]) -> Callable[[Row], Row]:
    """Multiplicity-preserving head mapper (no ``Distinct``)."""
    return _spec_extractor(spec)


# --------------------------------------------------------------------------- #
# Delta rules
# --------------------------------------------------------------------------- #


class DeltaRule:
    """The delta plan of one (disjunct, body-atom) pair, compiled once.

    Given the net delta rows of the atom's relation, :meth:`head_rows`
    streams every head row of a valuation that maps this atom to a delta row
    — with multiplicity: a row appears once per valuation, which is exactly
    the quantity counting-based maintenance accumulates.  The states the
    remaining atoms are evaluated against are chosen by the caller through
    the ``resolve`` argument (live / pre-transaction / augmented).
    """

    def __init__(self, disjunct: ConjunctiveQuery, atom_index: int) -> None:
        atoms = disjunct.atoms
        if not 0 <= atom_index < len(atoms):
            raise DeltaCompilationError(
                f"view disjunct {disjunct.name!r} has {len(atoms)} body atoms; "
                f"cannot compile a delta rule for atom index {atom_index}",
                view_name=disjunct.name,
            )
        atom = atoms[atom_index]
        self.relation = atom.relation
        self.atom_index = atom_index
        self._arity = len(atom.terms)

        # Seed: delta rows of the bound atom, filtered on the atom's
        # constants and repeated variables, projected to its distinct
        # variables in first-occurrence order.
        constant_positions: list[tuple[int, object]] = []
        first_occurrence: dict[Variable, int] = {}
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_positions.append((position, term.value))
            elif term in first_occurrence:
                duplicate_pairs.append((first_occurrence[term], position))
            else:
                first_occurrence[term] = position
        if constant_positions or duplicate_pairs:
            constants = tuple(constant_positions)
            pairs = tuple(duplicate_pairs)

            def seed_predicate(
                row: Row,
                constants: tuple[tuple[int, object], ...] = constants,
                pairs: tuple[tuple[int, int], ...] = pairs,
            ) -> bool:
                for position, value in constants:
                    if row[position] != value:
                        return False
                for first, later in pairs:
                    if row[first] != row[later]:
                        return False
                return True

            self._seed_predicate: Callable[[Row], bool] | None = seed_predicate
        else:
            self._seed_predicate = None
        self._seed_positions = tuple(first_occurrence.values())
        self._seed_extract = tuple_extractor(self._seed_positions)

        schema = tuple(first_occurrence)
        remaining = [a for i, a in enumerate(atoms) if i != atom_index]
        self._stages: list[_JoinStage] = []
        for other in _order_remaining(set(schema), remaining):
            stage = _JoinStage(schema, other)
            self._stages.append(stage)
            schema = schema + stage.fresh_variables
        self._head_spec = _head_spec(schema, disjunct.head, disjunct.name)
        self._head_mapper = _spec_mapper(self._head_spec)

    # Static structure, exposed for the delta-program verifier
    # (:func:`repro.analysis.verify_delta_program`).

    @property
    def arity(self) -> int:
        """Arity the rule's anchor atom was compiled against."""
        return self._arity

    @property
    def seed_positions(self) -> tuple[int, ...]:
        """Delta-row positions seeding the pipeline (first variable occurrences)."""
        return self._seed_positions

    @property
    def stages(self) -> tuple[_JoinStage, ...]:
        """The precompiled join stages, in execution order."""
        return tuple(self._stages)

    @property
    def head_spec(self) -> tuple[ColumnSpec, ...]:
        """Head projection as ``(pipeline position | None, constant)`` pairs."""
        return self._head_spec

    def pipeline(
        self, delta_rows: Collection[Row], resolve: LookupResolver
    ) -> Operator:
        """The operator tree computing head rows (with multiplicity)."""
        operator: Operator = Scan(delta_rows)
        if self._seed_predicate is not None:
            operator = Select(operator, self._seed_predicate)
        operator = Project(operator, self._seed_positions)
        for stage in self._stages:
            operator = stage.attach(operator, resolve)
        return Project(operator, mapper=self._head_mapper)

    def run(self, delta_rows: Collection[Row], resolve: LookupResolver) -> list[Row]:
        """Compiled fast path: the rows :meth:`pipeline` would stream.

        Eager staged loops over the precompiled :class:`_JoinStage` specs —
        same seed filter, same join order, same bag semantics as the operator
        pipeline, without per-row iterator dispatch.
        """
        extract = self._seed_extract
        predicate = self._seed_predicate
        if predicate is None:
            rows = [extract(row) for row in delta_rows]
        else:
            rows = [extract(row) for row in delta_rows if predicate(row)]
        for stage in self._stages:
            if not rows:
                return []
            rows = stage.extend(rows, resolve)
        head = self._head_mapper
        return [head(row) for row in rows]

    def head_rows(
        self, delta_rows: Collection[Row], resolve: LookupResolver
    ) -> Iterator[Row]:
        """Head rows derivable through ``delta_rows`` (bag semantics)."""
        if not delta_rows:
            return iter(())
        return iter(self.run(delta_rows, resolve))

    def affected_rows(
        self,
        delta_rows: Collection[Row],
        resolve: LookupResolver,
        current: Collection[Row],
    ) -> Iterator[Row]:
        """Distinct head rows derivable through ``delta_rows`` that are
        currently in the view — the DRed over-deletion candidates."""
        if not delta_rows or not current:
            return iter(())
        membership = (
            current if isinstance(current, (set, frozenset)) else set(current)
        )
        return iter({row for row in self.run(delta_rows, resolve) if row in membership})


class SupportCheck:
    """Compiled existence test: is a head row still derivable in a disjunct?

    The head binding becomes the seed row of the pipeline (constants are
    checked, repeated head variables enforced), the whole body is joined in a
    precompiled order, and the first surviving row proves support — the
    pipeline is abandoned immediately (Volcano operators are lazy).
    """

    def __init__(self, disjunct: ConjunctiveQuery) -> None:
        first_occurrence: dict[Variable, int] = {}
        constant_positions: list[tuple[int, object]] = []
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(disjunct.head):
            if isinstance(term, Constant):
                constant_positions.append((position, term.value))
            elif term in first_occurrence:
                duplicate_pairs.append((first_occurrence[term], position))
            else:
                first_occurrence[term] = position
        self._constants = tuple(constant_positions)
        self._duplicates = tuple(duplicate_pairs)
        self._seed_positions = tuple(first_occurrence.values())

        schema = tuple(first_occurrence)
        self._stages: list[_JoinStage] = []
        for atom in _order_remaining(set(schema), disjunct.atoms):
            stage = _JoinStage(schema, atom)
            self._stages.append(stage)
            schema = schema + stage.fresh_variables

    @property
    def stages(self) -> tuple[_JoinStage, ...]:
        """The precompiled join stages, in execution order."""
        return tuple(self._stages)

    def supported(self, row: Row, resolve: LookupResolver) -> bool:
        """Depth-first probe with the lazy pipeline's early exit.

        The first full valuation proves support and unwinds immediately —
        exactly when the abandoned Volcano pipeline would have stopped — so
        the fast path explores the same prefix of the search space.
        """
        for position, value in self._constants:
            if row[position] != value:
                return False
        for first, later in self._duplicates:
            if row[first] != row[later]:
                return False
        seed = tuple(row[p] for p in self._seed_positions)
        stages = self._stages
        if not stages:
            return True
        lookups = [
            resolve(stage.relation, stage.bound_positions, stage.arity)
            for stage in stages
        ]
        last = len(stages) - 1

        def probe(depth: int, bound: Row) -> bool:
            stage = stages[depth]
            lookup = lookups[depth]
            pairs = stage._pairs
            append = stage._append
            for right_row in lookup(stage._key(bound)):
                if pairs and not all(
                    right_row[a] == right_row[b] for a, b in pairs
                ):
                    continue
                if depth == last or probe(depth + 1, bound + append(right_row)):
                    return True
            return False

        return probe(0, seed)


# --------------------------------------------------------------------------- #
# Whole-view compilation
# --------------------------------------------------------------------------- #


class CompiledDisjunct:
    """All delta rules of one normalised CQ disjunct, grouped per relation."""

    def __init__(self, disjunct: ConjunctiveQuery) -> None:
        self.disjunct = disjunct
        rules: dict[str, list[DeltaRule]] = {}
        for index, atom in enumerate(disjunct.atoms):
            rules.setdefault(atom.relation, []).append(DeltaRule(disjunct, index))
        self.rules: dict[str, tuple[DeltaRule, ...]] = {
            name: tuple(per_atom) for name, per_atom in rules.items()
        }
        self.support = SupportCheck(disjunct)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(self.rules)


class CompiledViewDelta:
    """A view's delta program: per-relation rules plus the chosen strategy."""

    def __init__(self, name: str, disjuncts: Sequence[ConjunctiveQuery]) -> None:
        self.name = name
        self.disjuncts = tuple(CompiledDisjunct(d) for d in disjuncts)
        self.counting = len(disjuncts) == 1 and not _has_self_join(disjuncts[0])

    @property
    def mode(self) -> str:
        return "counting" if self.counting else "dred"

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(
            name for disjunct in self.disjuncts for name in disjunct.relations
        )


def _has_self_join(disjunct: ConjunctiveQuery) -> bool:
    names = [atom.relation for atom in disjunct.atoms]
    return len(names) != len(set(names))


def counting_eligible(disjuncts: Sequence[ConjunctiveQuery]) -> bool:
    """Counting maintenance is used for single-CQ views without self-joins;
    everything else falls back to DRed (see the module docstring)."""
    return len(disjuncts) == 1 and not _has_self_join(disjuncts[0])


def compile_view_delta(
    name: str, disjuncts: Sequence[ConjunctiveQuery]
) -> CompiledViewDelta:
    """Compile the (already normalised) disjuncts of a CQ/UCQ view.

    Raises :class:`~repro.errors.DeltaCompilationError` (a subclass of
    :class:`~repro.errors.UnsupportedQueryError`) for bodies without relation
    atoms (nothing to anchor a delta on) and for unsafe heads; the error
    carries the offending view name.
    """
    for disjunct in disjuncts:
        if not disjunct.atoms:
            raise DeltaCompilationError(
                f"view {name!r} has a disjunct without relation atoms; "
                "incremental maintenance needs at least one body atom",
                view_name=name,
            )
    return CompiledViewDelta(name, disjuncts)
