"""Compile view definitions into per-relation delta plans — once.

The incremental-maintenance layer used to re-derive a fresh anchored delta
query per single tuple and push it through the generic CQ evaluator
(normalisation, greedy ordering and pipeline construction per update).  This
module moves all of that work to *compile time*, DBToaster-style: each CQ
disjunct of a view is compiled once into

* one :class:`DeltaRule` per body atom — given the net delta rows of that
  atom's relation, it streams the head rows derivable *through* those rows,
  with multiplicities (one output per valuation, no ``Distinct``), as a
  pipeline of kernel operators (:class:`~repro.exec.operators.Scan` →
  :class:`~repro.exec.operators.Select` →
  :class:`~repro.exec.operators.Project` →
  :class:`~repro.exec.operators.LookupJoin` chain);
* one :class:`SupportCheck` — an existence test "is this head row still
  derivable?", used by the DRed fallback after over-deletion.

Only the *lookups* are late-bound: every stage resolves its key→rows probe
through a ``LookupResolver`` at execution time, so the same compiled rule
runs against the live secondary indexes of the database, against the
reconstructed *pre-transaction* state (telescoped counting over multi-relation
batches) or against the live-plus-deleted superset (DRed candidate
generation).  Resolving per execution also keeps the rules correct when a
relation evicts and lazily rebuilds a cached secondary index.

Which maintenance strategy a view gets:

* **counting** (:func:`counting_eligible`) — single-CQ views without
  self-joins keep a ``row → number of derivations`` multiset; deletions just
  decrement counts, and a row leaves the view exactly when its count reaches
  zero.  Unsound in general for self-joins (one base tuple can appear in
  several atom positions of the same valuation) and deliberately not used
  across UCQ disjuncts, so
* **DRed** — everything else CQ/UCQ-shaped over-deletes the rows whose
  derivations may use a deleted tuple (candidates intersected with the
  current view through a :class:`~repro.exec.operators.SemiJoin`) and
  re-derives survivors through the compiled :class:`SupportCheck`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Collection, Iterator, Mapping, Sequence, cast

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.terms import Constant, Variable
from ..errors import DeltaCompilationError
from .codegen import compile_closure_source
from .iometer import IOMeter
from .operators import (
    LookupJoin,
    Operator,
    Project,
    Row,
    Scan,
    Select,
    tuple_extractor,
)

#: ``resolver(relation, key_positions, arity) -> (key -> matching rows)``.
#: Implementations decide *which state* of the relation the probe sees.
LookupResolver = Callable[[str, tuple[int, ...], int], Callable[[Row], Sequence[Row]]]

#: One head/key column: either a pipeline position or a pinned constant.
ColumnSpec = tuple[int | None, object]

#: Generated maintenance kernels (see :func:`compile_maintenance`):
#: counting increment/decrement over a delta-count dict, DRed insert/affected
#: collection into a set, and the per-row support probe.
CountKernel = Callable[[Collection[Row], "LookupResolver", "dict[Row, int]", int], None]
SetKernel = Callable[[Collection[Row], "LookupResolver", Collection[Row], "set[Row]"], None]
SupportKernel = Callable[[Row, "LookupResolver"], bool]


def metered_resolver(resolve: LookupResolver, meter: IOMeter) -> LookupResolver:
    """Charge every probe's returned rows to ``meter`` as a ``Dξ`` fetch.

    The wrapper sits at the *resolver boundary*, which is the one place both
    maintenance tiers share: the interpreted staged loops and the generated
    nested-loop kernels each probe exactly once per partial binding, so
    wrapping here — and charging nothing for ``resolve`` itself — makes the
    IOMeter fields of the two tiers bit-identical by construction.
    """

    def resolved(
        relation: str, positions: tuple[int, ...], arity: int
    ) -> Callable[[Row], Sequence[Row]]:
        lookup = resolve(relation, positions, arity)
        record = meter.record_fetch

        def metered(key: Row) -> Sequence[Row]:
            rows = lookup(key)
            record(relation, len(rows))
            return rows

        return metered

    return resolved


# --------------------------------------------------------------------------- #
# Stage compilation (the static half of cq_compiler.join_atom)
# --------------------------------------------------------------------------- #


class _JoinStage:
    """One precompiled ``LookupJoin`` extension of a variable-row pipeline.

    The stage carries both execution forms: :meth:`attach` builds the
    reference operator pipeline (what the delta-program verifier inspects),
    :meth:`extend` is the compiled fast path — one eager loop with the
    duplicate-variable filter and the fresh-column projection inlined,
    producing exactly the rows the operator pipeline would stream.
    """

    __slots__ = (
        "relation",
        "arity",
        "bound_positions",
        "_key",
        "_key_spec",
        "_dup_predicate",
        "_pairs",
        "_fresh_positions",
        "_append",
        "kept",
        "fresh_variables",
    )

    def __init__(
        self,
        schema: tuple[Variable, ...],
        atom: RelationAtom,
    ) -> None:
        self.relation = atom.relation
        self.arity = len(atom.terms)
        width = len(schema)
        position_of = {variable: index for index, variable in enumerate(schema)}

        bound_positions: list[int] = []
        key_spec: list[ColumnSpec] = []  # (pipeline position, constant)
        fresh_first: dict[Variable, int] = {}
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(position)
                key_spec.append((None, term.value))
            elif term in position_of:
                bound_positions.append(position)
                key_spec.append((position_of[term], None))
            elif term in fresh_first:
                duplicate_pairs.append((fresh_first[term], position))
            else:
                fresh_first[term] = position
        self.bound_positions = tuple(bound_positions)

        self._key_spec = tuple(key_spec)
        self._fresh_positions = tuple(fresh_first.values())
        self._key = _spec_extractor(self._key_spec)
        if duplicate_pairs:
            pairs = tuple(duplicate_pairs)

            def predicate(
                row: Row,
                pairs: tuple[tuple[int, int], ...] = pairs,
                width: int = width,
            ) -> bool:
                return all(row[width + a] == row[width + b] for a, b in pairs)

            self._dup_predicate: Callable[[Row], bool] | None = predicate
        else:
            self._dup_predicate = None
        self._pairs = tuple(duplicate_pairs)
        self._append = tuple_extractor(tuple(fresh_first.values()))
        self.kept = tuple(range(width)) + tuple(width + p for p in fresh_first.values())
        self.fresh_variables = tuple(fresh_first)

    def attach(self, operator: Operator, resolve: LookupResolver) -> Operator:
        lookup = resolve(self.relation, self.bound_positions, self.arity)
        joined: Operator = LookupJoin(operator, lookup, self._key)
        if self._dup_predicate is not None:
            joined = Select(joined, self._dup_predicate)
        return Project(joined, self.kept)

    def extend(self, rows: Sequence[Row], resolve: LookupResolver) -> list[Row]:
        """Compiled fast path: the rows :meth:`attach`'s pipeline would emit.

        Eagerly extends every input row with the matching right rows'
        fresh columns — bag semantics preserved, duplicate-variable pairs
        checked on the right row before it contributes.
        """
        lookup = resolve(self.relation, self.bound_positions, self.arity)
        key = self._key
        append = self._append
        out: list[Row] = []
        emit = out.append
        if self._pairs:
            pairs = self._pairs
            for left_row in rows:
                for right_row in lookup(key(left_row)):
                    if all(right_row[a] == right_row[b] for a, b in pairs):
                        emit(left_row + append(right_row))
        else:
            for left_row in rows:
                for right_row in lookup(key(left_row)):
                    emit(left_row + append(right_row))
        return out


def _order_remaining(
    bound: set[Variable], atoms: Sequence[RelationAtom]
) -> list[RelationAtom]:
    """Greedy static join order: stay connected, most-bound atoms first.

    Compile-time ordering cannot consult live statistics (the rule outlives
    any one database state), so it optimises what it can see: the number of
    bound positions, then the number of fresh variables introduced.
    """
    remaining = list(atoms)
    ordered: list[RelationAtom] = []
    bound = set(bound)
    while remaining:

        def score(atom: RelationAtom) -> tuple[int, int, int]:
            bound_count = sum(
                1
                for term in atom.terms
                if isinstance(term, Constant) or term in bound
            )
            fresh = len({t for t in atom.variables if t not in bound})
            return (-bound_count, fresh, len(atom.terms))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


def _head_spec(
    schema: tuple[Variable, ...],
    head: Sequence[object],
    view_name: str,
) -> tuple[ColumnSpec, ...]:
    """Positional head-projection spec (the static, inspectable half)."""
    position_of = {variable: index for index, variable in enumerate(schema)}
    spec: list[ColumnSpec] = []
    for term in head:
        if isinstance(term, Constant):
            spec.append((None, term.value))
        elif term in position_of:
            spec.append((position_of[term], None))
        else:
            raise DeltaCompilationError(
                f"view disjunct {view_name!r}: head term {term} is not bound "
                "by the body; unsafe views cannot be incrementally maintained",
                view_name=view_name,
            )
    return tuple(spec)


def _spec_extractor(spec: tuple[ColumnSpec, ...]) -> Callable[[Row], Row]:
    """Spec → row mapper; all-positional specs become plain ``itemgetter``s."""
    if all(position is not None for position, _ in spec):
        return tuple_extractor(tuple(position for position, _ in spec if position is not None))

    def mapper(row: Row, spec: tuple[ColumnSpec, ...] = spec) -> Row:
        return tuple(row[i] if i is not None else v for i, v in spec)

    return mapper


def _spec_mapper(spec: tuple[ColumnSpec, ...]) -> Callable[[Row], Row]:
    """Multiplicity-preserving head mapper (no ``Distinct``)."""
    return _spec_extractor(spec)


# --------------------------------------------------------------------------- #
# Delta rules
# --------------------------------------------------------------------------- #


class DeltaRule:
    """The delta plan of one (disjunct, body-atom) pair, compiled once.

    Given the net delta rows of the atom's relation, :meth:`head_rows`
    streams every head row of a valuation that maps this atom to a delta row
    — with multiplicity: a row appears once per valuation, which is exactly
    the quantity counting-based maintenance accumulates.  The states the
    remaining atoms are evaluated against are chosen by the caller through
    the ``resolve`` argument (live / pre-transaction / augmented).
    """

    def __init__(self, disjunct: ConjunctiveQuery, atom_index: int) -> None:
        atoms = disjunct.atoms
        if not 0 <= atom_index < len(atoms):
            raise DeltaCompilationError(
                f"view disjunct {disjunct.name!r} has {len(atoms)} body atoms; "
                f"cannot compile a delta rule for atom index {atom_index}",
                view_name=disjunct.name,
            )
        atom = atoms[atom_index]
        self.relation = atom.relation
        self.atom_index = atom_index
        self._arity = len(atom.terms)

        # Seed: delta rows of the bound atom, filtered on the atom's
        # constants and repeated variables, projected to its distinct
        # variables in first-occurrence order.
        constant_positions: list[tuple[int, object]] = []
        first_occurrence: dict[Variable, int] = {}
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_positions.append((position, term.value))
            elif term in first_occurrence:
                duplicate_pairs.append((first_occurrence[term], position))
            else:
                first_occurrence[term] = position
        if constant_positions or duplicate_pairs:
            constants = tuple(constant_positions)
            pairs = tuple(duplicate_pairs)

            def seed_predicate(
                row: Row,
                constants: tuple[tuple[int, object], ...] = constants,
                pairs: tuple[tuple[int, int], ...] = pairs,
            ) -> bool:
                for position, value in constants:
                    if row[position] != value:
                        return False
                for first, later in pairs:
                    if row[first] != row[later]:
                        return False
                return True

            self._seed_predicate: Callable[[Row], bool] | None = seed_predicate
        else:
            self._seed_predicate = None
        self._seed_constants = tuple(constant_positions)
        self._seed_pairs = tuple(duplicate_pairs)
        self._seed_positions = tuple(first_occurrence.values())
        self._seed_extract = tuple_extractor(self._seed_positions)

        schema = tuple(first_occurrence)
        remaining = [a for i, a in enumerate(atoms) if i != atom_index]
        self._stages: list[_JoinStage] = []
        for other in _order_remaining(set(schema), remaining):
            stage = _JoinStage(schema, other)
            self._stages.append(stage)
            schema = schema + stage.fresh_variables
        self._head_spec = _head_spec(schema, disjunct.head, disjunct.name)
        self._head_mapper = _spec_mapper(self._head_spec)

    # Static structure, exposed for the delta-program verifier
    # (:func:`repro.analysis.verify_delta_program`).

    @property
    def arity(self) -> int:
        """Arity the rule's anchor atom was compiled against."""
        return self._arity

    @property
    def seed_positions(self) -> tuple[int, ...]:
        """Delta-row positions seeding the pipeline (first variable occurrences)."""
        return self._seed_positions

    @property
    def stages(self) -> tuple[_JoinStage, ...]:
        """The precompiled join stages, in execution order."""
        return tuple(self._stages)

    @property
    def head_spec(self) -> tuple[ColumnSpec, ...]:
        """Head projection as ``(pipeline position | None, constant)`` pairs."""
        return self._head_spec

    def pipeline(
        self, delta_rows: Collection[Row], resolve: LookupResolver
    ) -> Operator:
        """The operator tree computing head rows (with multiplicity)."""
        operator: Operator = Scan(delta_rows)
        if self._seed_predicate is not None:
            operator = Select(operator, self._seed_predicate)
        operator = Project(operator, self._seed_positions)
        for stage in self._stages:
            operator = stage.attach(operator, resolve)
        return Project(operator, mapper=self._head_mapper)

    def run(self, delta_rows: Collection[Row], resolve: LookupResolver) -> list[Row]:
        """Compiled fast path: the rows :meth:`pipeline` would stream.

        Eager staged loops over the precompiled :class:`_JoinStage` specs —
        same seed filter, same join order, same bag semantics as the operator
        pipeline, without per-row iterator dispatch.
        """
        extract = self._seed_extract
        predicate = self._seed_predicate
        if predicate is None:
            rows = [extract(row) for row in delta_rows]
        else:
            rows = [extract(row) for row in delta_rows if predicate(row)]
        for stage in self._stages:
            if not rows:
                return []
            rows = stage.extend(rows, resolve)
        head = self._head_mapper
        return [head(row) for row in rows]

    def head_rows(
        self, delta_rows: Collection[Row], resolve: LookupResolver
    ) -> Iterator[Row]:
        """Head rows derivable through ``delta_rows`` (bag semantics)."""
        if not delta_rows:
            return iter(())
        return iter(self.run(delta_rows, resolve))

    def affected_rows(
        self,
        delta_rows: Collection[Row],
        resolve: LookupResolver,
        current: Collection[Row],
    ) -> Iterator[Row]:
        """Distinct head rows derivable through ``delta_rows`` that are
        currently in the view — the DRed over-deletion candidates."""
        if not delta_rows or not current:
            return iter(())
        membership = (
            current if isinstance(current, (set, frozenset)) else set(current)
        )
        return iter({row for row in self.run(delta_rows, resolve) if row in membership})


class SupportCheck:
    """Compiled existence test: is a head row still derivable in a disjunct?

    The head binding becomes the seed row of the pipeline (constants are
    checked, repeated head variables enforced), the whole body is joined in a
    precompiled order, and the first surviving row proves support — the
    pipeline is abandoned immediately (Volcano operators are lazy).
    """

    def __init__(self, disjunct: ConjunctiveQuery) -> None:
        first_occurrence: dict[Variable, int] = {}
        constant_positions: list[tuple[int, object]] = []
        duplicate_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(disjunct.head):
            if isinstance(term, Constant):
                constant_positions.append((position, term.value))
            elif term in first_occurrence:
                duplicate_pairs.append((first_occurrence[term], position))
            else:
                first_occurrence[term] = position
        self._constants = tuple(constant_positions)
        self._duplicates = tuple(duplicate_pairs)
        self._seed_positions = tuple(first_occurrence.values())

        schema = tuple(first_occurrence)
        self._stages: list[_JoinStage] = []
        for atom in _order_remaining(set(schema), disjunct.atoms):
            stage = _JoinStage(schema, atom)
            self._stages.append(stage)
            schema = schema + stage.fresh_variables

    @property
    def stages(self) -> tuple[_JoinStage, ...]:
        """The precompiled join stages, in execution order."""
        return tuple(self._stages)

    def supported(self, row: Row, resolve: LookupResolver) -> bool:
        """Depth-first probe with the lazy pipeline's early exit.

        The first full valuation proves support and unwinds immediately —
        exactly when the abandoned Volcano pipeline would have stopped — so
        the fast path explores the same prefix of the search space.
        """
        for position, value in self._constants:
            if row[position] != value:
                return False
        for first, later in self._duplicates:
            if row[first] != row[later]:
                return False
        seed = tuple(row[p] for p in self._seed_positions)
        stages = self._stages
        if not stages:
            return True
        lookups = [
            resolve(stage.relation, stage.bound_positions, stage.arity)
            for stage in stages
        ]
        last = len(stages) - 1

        def probe(depth: int, bound: Row) -> bool:
            stage = stages[depth]
            lookup = lookups[depth]
            pairs = stage._pairs
            append = stage._append
            for right_row in lookup(stage._key(bound)):
                if pairs and not all(
                    right_row[a] == right_row[b] for a, b in pairs
                ):
                    continue
                if depth == last or probe(depth + 1, bound + append(right_row)):
                    return True
            return False

        return probe(0, seed)


# --------------------------------------------------------------------------- #
# Whole-view compilation
# --------------------------------------------------------------------------- #


class CompiledDisjunct:
    """All delta rules of one normalised CQ disjunct, grouped per relation."""

    def __init__(self, disjunct: ConjunctiveQuery) -> None:
        self.disjunct = disjunct
        rules: dict[str, list[DeltaRule]] = {}
        for index, atom in enumerate(disjunct.atoms):
            rules.setdefault(atom.relation, []).append(DeltaRule(disjunct, index))
        self.rules: dict[str, tuple[DeltaRule, ...]] = {
            name: tuple(per_atom) for name, per_atom in rules.items()
        }
        self.support = SupportCheck(disjunct)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(self.rules)


class CompiledViewDelta:
    """A view's delta program: per-relation rules plus the chosen strategy."""

    def __init__(self, name: str, disjuncts: Sequence[ConjunctiveQuery]) -> None:
        self.name = name
        self.disjuncts = tuple(CompiledDisjunct(d) for d in disjuncts)
        self.counting = len(disjuncts) == 1 and not _has_self_join(disjuncts[0])

    @property
    def mode(self) -> str:
        return "counting" if self.counting else "dred"

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(
            name for disjunct in self.disjuncts for name in disjunct.relations
        )


def _has_self_join(disjunct: ConjunctiveQuery) -> bool:
    names = [atom.relation for atom in disjunct.atoms]
    return len(names) != len(set(names))


def counting_eligible(disjuncts: Sequence[ConjunctiveQuery]) -> bool:
    """Counting maintenance is used for single-CQ views without self-joins;
    everything else falls back to DRed (see the module docstring)."""
    return len(disjuncts) == 1 and not _has_self_join(disjuncts[0])


def compile_view_delta(
    name: str, disjuncts: Sequence[ConjunctiveQuery]
) -> CompiledViewDelta:
    """Compile the (already normalised) disjuncts of a CQ/UCQ view.

    Raises :class:`~repro.errors.DeltaCompilationError` (a subclass of
    :class:`~repro.errors.UnsupportedQueryError`) for bodies without relation
    atoms (nothing to anchor a delta on) and for unsafe heads; the error
    carries the offending view name.
    """
    for disjunct in disjuncts:
        if not disjunct.atoms:
            raise DeltaCompilationError(
                f"view {name!r} has a disjunct without relation atoms; "
                "incremental maintenance needs at least one body atom",
                view_name=name,
            )
    return CompiledViewDelta(name, disjuncts)


# --------------------------------------------------------------------------- #
# Generated maintenance kernels (the compiled delta tier)
# --------------------------------------------------------------------------- #
#
# The classes above already avoid per-update planning; the kernels below also
# avoid per-row *interpretation*.  :func:`compile_maintenance` turns every
# delta rule into one fused nested-loop function — seed filter, join-key
# construction, duplicate-variable guards, head projection and the sink
# (counting increment/decrement, DRed insert, DRed candidate∩view semi-join)
# all inlined as generated source, ``exec``'d through
# :func:`repro.exec.codegen.compile_closure_source`.
#
# Discipline, identical to the read-side codegen tier:
#
# * **data independence** — the source text mentions tuple positions and
#   control flow only; relation names, key positions, arities and pinned
#   constants are passed through the exec namespace (``_R*``/``_B*``/``_A*``,
#   ``_SC*``/``_K*``/``_H*``), never interpolated into code.  The kernels are
#   therefore reusable across database states and survive index
#   eviction/rebuild: every execution late-binds storage through ``resolve``.
# * **Dξ parity** — a kernel probes each stage lookup exactly once per
#   partial binding, which is exactly once per intermediate row of the
#   interpreted staged loops; with :func:`metered_resolver` wrapped around
#   the same resolver on both tiers, every IOMeter field matches
#   bit-identically.  Resolving the stage lookups themselves is uncharged on
#   both tiers, so the kernels may resolve all stages up front (the
#   interpreted path resolves lazily and skips stages after an empty
#   intermediate result — a cost difference, never an accounting one).


class _KernelSource:
    """Accumulates generated source lines plus their ``exec`` namespace."""

    __slots__ = ("namespace", "_lines", "_counter")

    def __init__(self) -> None:
        self.namespace: dict[str, Any] = {}
        self._lines: list[str] = []
        self._counter = 0

    def const(self, value: object, prefix: str) -> str:
        """Bind ``value`` in the namespace; the source sees only the name."""
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.namespace[name] = value
        return name

    def emit(self, indent: int, text: str) -> None:
        self._lines.append("    " * indent + text)

    @property
    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


def _tuple_literal(exprs: Sequence[str]) -> str:
    if not exprs:
        return "()"
    if len(exprs) == 1:
        return f"({exprs[0]},)"
    return "(" + ", ".join(exprs) + ")"


def _emit_stage_loops(
    ks: _KernelSource,
    stages: Sequence[_JoinStage],
    col_exprs: list[str],
    indent: int,
) -> int:
    """Emit one nested probe loop per join stage; returns the body indent.

    ``col_exprs`` maps each pipeline-schema position to the expression that
    reads it inside the innermost loop (seed columns first, then each stage's
    fresh columns); the list is extended in place as stages nest.
    """
    for j, stage in enumerate(stages):
        key_exprs = [
            col_exprs[position] if position is not None else ks.const(value, "K")
            for position, value in stage._key_spec
        ]
        ks.emit(indent, f"for t{j} in _l{j}({_tuple_literal(key_exprs)}):")
        indent += 1
        for a, b in stage._pairs:
            ks.emit(indent, f"if t{j}[{a}] != t{j}[{b}]:")
            ks.emit(indent + 1, "continue")
        col_exprs.extend(f"t{j}[{q}]" for q in stage._fresh_positions)
    return indent


def _emit_stage_resolves(
    ks: _KernelSource, stages: Sequence[_JoinStage], indent: int
) -> None:
    for j, stage in enumerate(stages):
        rel = ks.const(stage.relation, "R")
        bound = ks.const(stage.bound_positions, "B")
        arity = ks.const(stage.arity, "A")
        ks.emit(indent, f"_l{j} = resolve({rel}, {bound}, {arity})")


def _rule_kernel(rule: DeltaRule, kind: str) -> tuple[Callable[..., Any], str]:
    """Generate one fused maintenance kernel for ``rule``.

    ``kind`` selects the sink: ``"count"`` applies ``sign`` to a delta-count
    dict (counting maintenance, shared by the insert and delete directions),
    ``"insert"`` collects head rows absent from the current view (DRed
    insertion), ``"affected"`` collects head rows present in the current view
    (DRed over-deletion candidates — the candidate∩view semi-join inlined as
    a membership test against the maintained set).
    """
    ks = _KernelSource()
    stages = rule._stages
    if kind == "count":
        ks.emit(0, "def _kernel(delta_rows, resolve, counts, sign):")
    elif kind == "insert":
        ks.emit(0, "def _kernel(delta_rows, resolve, current, added):")
    else:
        ks.emit(0, "def _kernel(delta_rows, resolve, current, affected):")
    _emit_stage_resolves(ks, stages, 1)
    if kind == "count":
        ks.emit(1, "_get = counts.get")
    else:
        ks.emit(1, "_add = added.add" if kind == "insert" else "_add = affected.add")
    ks.emit(1, "for d in delta_rows:")
    indent = 2
    for position, value in rule._seed_constants:
        name = ks.const(value, "SC")
        ks.emit(indent, f"if d[{position}] != {name}:")
        ks.emit(indent + 1, "continue")
    for first, later in rule._seed_pairs:
        ks.emit(indent, f"if d[{first}] != d[{later}]:")
        ks.emit(indent + 1, "continue")
    col_exprs = [f"d[{p}]" for p in rule._seed_positions]
    indent = _emit_stage_loops(ks, stages, col_exprs, indent)
    head_exprs = [
        col_exprs[position] if position is not None else ks.const(value, "H")
        for position, value in rule._head_spec
    ]
    ks.emit(indent, f"h = {_tuple_literal(head_exprs)}")
    if kind == "count":
        ks.emit(indent, "counts[h] = _get(h, 0) + sign")
    elif kind == "insert":
        ks.emit(indent, "if h not in current:")
        ks.emit(indent + 1, "_add(h)")
    else:
        ks.emit(indent, "if h in current:")
        ks.emit(indent + 1, "_add(h)")
    kernel = compile_closure_source(
        ks.source, ks.namespace, "_kernel", filename=f"<repro-delta-{kind}>"
    )
    return kernel, ks.source


def _support_kernel(check: SupportCheck) -> tuple[SupportKernel, str]:
    """Generate the DFS support probe as one nested loop with early return.

    Guards run before any stage lookup is resolved — same order as the
    interpreted :meth:`SupportCheck.supported` — and ``return True`` in the
    innermost loop unwinds at the first full valuation, exploring exactly
    the prefix of the search space the interpreted DFS explores.
    """
    ks = _KernelSource()
    stages = check._stages
    ks.emit(0, "def _kernel(row, resolve):")
    for position, value in check._constants:
        name = ks.const(value, "SC")
        ks.emit(1, f"if row[{position}] != {name}:")
        ks.emit(2, "return False")
    for first, later in check._duplicates:
        ks.emit(1, f"if row[{first}] != row[{later}]:")
        ks.emit(2, "return False")
    if not stages:
        ks.emit(1, "return True")
    else:
        _emit_stage_resolves(ks, stages, 1)
        col_exprs = [f"row[{p}]" for p in check._seed_positions]
        indent = _emit_stage_loops(ks, stages, col_exprs, 1)
        ks.emit(indent, "return True")
        ks.emit(1, "return False")
    kernel = compile_closure_source(
        ks.source, ks.namespace, "_kernel", filename="<repro-delta-support>"
    )
    return cast(SupportKernel, kernel), ks.source


class RuleKernels:
    """The three generated sinks of one delta rule, plus their source text."""

    __slots__ = ("count", "insert", "affected", "sources")

    def __init__(self, rule: DeltaRule) -> None:
        count, count_src = _rule_kernel(rule, "count")
        insert, insert_src = _rule_kernel(rule, "insert")
        affected, affected_src = _rule_kernel(rule, "affected")
        self.count = cast(CountKernel, count)
        self.insert = cast(SetKernel, insert)
        self.affected = cast(SetKernel, affected)
        #: kind → generated source, for tests and ``explain``-style debugging.
        self.sources: Mapping[str, str] = {
            "count": count_src,
            "insert": insert_src,
            "affected": affected_src,
        }


class DisjunctKernels:
    """Generated kernels of one disjunct, aligned with
    :attr:`CompiledDisjunct.rules` (same relation keys, same rule order)."""

    __slots__ = ("rules", "supported", "support_source")

    def __init__(self, disjunct: CompiledDisjunct) -> None:
        self.rules: dict[str, tuple[RuleKernels, ...]] = {
            name: tuple(RuleKernels(rule) for rule in per_atom)
            for name, per_atom in disjunct.rules.items()
        }
        self.supported, self.support_source = _support_kernel(disjunct.support)


class MaintenanceKernels:
    """A view's delta program compiled to generated nested-loop kernels."""

    __slots__ = ("name", "counting", "disjuncts", "compile_seconds")

    def __init__(
        self,
        name: str,
        counting: bool,
        disjuncts: tuple[DisjunctKernels, ...],
        compile_seconds: float,
    ) -> None:
        self.name = name
        self.counting = counting
        self.disjuncts = disjuncts
        self.compile_seconds = compile_seconds


def compile_maintenance(compiled: CompiledViewDelta) -> MaintenanceKernels:
    """Compile a view's delta program into generated maintenance kernels.

    Raises :class:`~repro.errors.DeltaCompilationError` if source generation
    or compilation fails for any rule; callers (the maintainer's
    warmup→verify→compile lifecycle) treat that as *ineligible forever* and
    keep the interpreted rules, never surfacing the error to a write.
    """
    started = time.perf_counter()
    try:
        disjuncts = tuple(DisjunctKernels(d) for d in compiled.disjuncts)
    except DeltaCompilationError:
        raise
    except Exception as exc:
        raise DeltaCompilationError(
            f"view {compiled.name!r}: generating maintenance kernels failed: {exc}",
            view_name=compiled.name,
        ) from exc
    return MaintenanceKernels(
        compiled.name,
        compiled.counting,
        disjuncts,
        time.perf_counter() - started,
    )
