"""Codegen execution tier: compile physical plans to specialized closures.

The interpreted kernel (:mod:`repro.exec.operators`) is the reference
implementation: every row pays ``open``/``next``/``close`` dispatch,
generator resumption, and per-operator reshaping.  This module compiles the
*same* physical plans — through the *same* lowering pass
(:mod:`repro.exec.lowering`) — into a tree of fused closures in the spirit
of data-centric codegen: selections and residual join filters run inside the
producing loop, projections are precomputed ``itemgetter``s, hash tables are
built once per execution, and the ``IndexLookup`` key-dedup is inlined next
to the fetch it guards.

Two invariants make the tier safe to swap in for the interpreter:

*Bit-identical ``Dξ``.*  The paper's cost metric is the bag of tuples pulled
through access-constraint indexes.  The interpreted driver fully drains its
operator tree, ``IndexLookup`` charges once per *distinct* key (``S_j`` has
set semantics, so charging is order-independent over the key set), and a
cached-view scan charges once per plan occurrence per execution.  The
compiled closures preserve exactly those charging points — same constraint,
same distinct-key set, same per-occurrence view-scan — so
:class:`~repro.exec.iometer.IOMeter` counters match the interpreted tree
field for field, not just approximately.

*Data-independent artifacts.*  Closures close over positions, constraints
and extractors — never over data.  Provider, view cache, meter and parameter
bindings arrive late, per execution, through a :class:`Runtime`, so a
closure compiled once stays valid across write transactions (the backend
hands in the current storage state each time) and a prepared query can run
it with fresh parameter bindings without re-binding the plan tree.

Set semantics follows the interpreter's ``Distinct`` discipline: every step
returns distinct rows (non-injective steps — fetch, projection, union —
dedup inline; the rest preserve distinctness), so result cardinalities match
the operator tree's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product as _iter_product
from typing import Any, Callable, Collection, Iterator, Mapping, Protocol, Sequence, cast

from ..algebra.terms import Param
from ..core.access import AccessConstraint, AccessSchema
from ..core.plans import (
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from ..errors import PlanError
from .iometer import IOMeter
from .lowering import (
    AttributeCheck,
    Check,
    ConstantCheck,
    LoweredJoin,
    Row,
    attribute_position,
    key_extractor,
    lower_fetch,
    lower_join,
    lower_predicates,
    tuple_extractor,
)


class FetchProviderLike(Protocol):
    """The only storage surface a compiled closure may touch: metered fetch."""

    def fetch(
        self, constraint: AccessConstraint, key: Sequence[object]
    ) -> frozenset[Row]:
        """Return ``D_{R:XY}(X = key)`` for the constraint's relation."""
        ...


class Runtime:
    """Late-bound state of one compiled-plan execution.

    A fresh ``Runtime`` per execution is what keeps compiled artifacts
    data-independent: the closure tree never sees storage or bindings at
    compile time, so cache-held closures survive writes and rebinds.
    """

    __slots__ = ("provider", "views", "meter", "params")

    def __init__(
        self,
        provider: FetchProviderLike,
        views: Mapping[str, Collection[Row]],
        meter: IOMeter,
        params: Mapping[str, object],
    ) -> None:
        self.provider = provider
        self.views = views
        self.meter = meter
        self.params = params


#: One compiled plan node: runtime in, distinct rows out.
Step = Callable[[Runtime], Collection[Row]]


def compile_closure_source(
    source: str,
    namespace: dict[str, Any],
    entry: str,
    *,
    filename: str = "<repro-codegen>",
) -> Callable[..., Any]:
    """``exec`` generated function source and return its entry callable.

    The shared closure-building substrate of the codegen tier: both the plan
    compiler and the delta compiler (:mod:`repro.exec.delta_compiler`) build
    fused loop nests as Python source whose free names — relation names, key
    positions, pinned constants — live in ``namespace``, never in the source
    text itself.  That keeps generated artifacts data-independent (the source
    mentions positions and constraint shapes only) and safe: no runtime value
    is ever interpolated into code.
    """
    code = compile(source, filename, "exec")
    exec(code, namespace)  # noqa: S102 - the source is generated, not user input
    return cast("Callable[..., Any]", namespace[entry])

_RowPredicate = Callable[[Row], bool]
_PredicateFactory = Callable[[Runtime], _RowPredicate]


@dataclass(frozen=True)
class CompiledPlan:
    """A physical plan compiled to a closure tree, plus its run contract.

    ``parameters`` are the :class:`~repro.algebra.terms.Param` names the
    closure resolves at execution time — callers pass bindings instead of
    rewriting the plan.  ``compile_seconds`` is the wall-clock cost of
    building the closure tree (surfaced by ``QueryService.explain``).
    """

    attributes: tuple[str, ...]
    parameters: frozenset[str]
    compile_seconds: float
    step: Step

    def execute(
        self,
        provider: FetchProviderLike,
        views: Mapping[str, Collection[Row]],
        meter: IOMeter,
        params: Mapping[str, object] | None = None,
    ) -> frozenset[Row]:
        """Run the closure tree against the *current* storage state."""
        bindings: Mapping[str, object] = params if params is not None else {}
        missing = [name for name in sorted(self.parameters) if name not in bindings]
        if missing:
            raise PlanError(
                "compiled plan is missing parameter bindings: " + ", ".join(missing)
            )
        return frozenset(self.step(Runtime(provider, views, meter, bindings)))


def compile_plan_closure(plan: PlanNode, access_schema: AccessSchema) -> CompiledPlan:
    """Compile a plan tree into a :class:`CompiledPlan`.

    Fetches without a covering access constraint and attribute references the
    input does not produce are rejected here as
    :class:`~repro.errors.PlanError`, before any data is touched — the same
    guards the interpreted compiler applies.  Unbound parameters are *not*
    errors: they become the compiled plan's ``parameters`` contract.
    """
    started = time.perf_counter()
    parameters: set[str] = set()
    step = _compile_step(plan, access_schema, parameters)
    return CompiledPlan(
        attributes=plan.attributes,
        parameters=frozenset(parameters),
        compile_seconds=time.perf_counter() - started,
        step=step,
    )


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


def _constant_predicate(position: int, value: object, negated: bool) -> _RowPredicate:
    def check(row: Row) -> bool:
        return (row[position] == value) != negated

    return check


def _attribute_predicate(left: int, right: int, negated: bool) -> _RowPredicate:
    def check(row: Row) -> bool:
        return (row[left] == row[right]) != negated

    return check


def _conjunction(predicates: Sequence[_RowPredicate]) -> _RowPredicate:
    if len(predicates) == 1:
        return predicates[0]
    closures = tuple(predicates)

    def check(row: Row) -> bool:
        return all(closure(row) for closure in closures)

    return check


def _predicate_factory(
    checks: Sequence[Check], parameters: set[str]
) -> _PredicateFactory:
    """Lowered checks → a per-execution predicate builder.

    Checks against plain constants are closed at compile time; checks whose
    constant is a :class:`Param` re-resolve from ``Runtime.params`` once per
    execution (not once per row), which is how prepared queries skip
    ``bind_plan`` entirely on the compiled tier.
    """
    static: list[_RowPredicate] = []
    dynamic: list[tuple[int, str, bool]] = []
    for check in checks:
        if isinstance(check, ConstantCheck):
            if isinstance(check.value, Param):
                parameters.add(check.value.name)
                dynamic.append((check.position, check.value.name, check.negated))
            else:
                static.append(
                    _constant_predicate(check.position, check.value, check.negated)
                )
        else:
            static.append(_attribute_predicate(check.left, check.right, check.negated))

    if not dynamic:
        predicate = _conjunction(static)
        return lambda runtime: predicate

    base = tuple(static)
    bindings = tuple(dynamic)

    def factory(runtime: Runtime) -> _RowPredicate:
        params = runtime.params
        resolved = list(base)
        for position, name, negated in bindings:
            resolved.append(_constant_predicate(position, params[name], negated))
        return _conjunction(resolved)

    return factory


# --------------------------------------------------------------------------- #
# Plan nodes → steps
# --------------------------------------------------------------------------- #


def _compile_step(
    node: PlanNode, access_schema: AccessSchema, parameters: set[str]
) -> Step:
    def recurse(child: PlanNode) -> Step:
        return _compile_step(child, access_schema, parameters)

    if isinstance(node, ConstantScan):
        value = node.value
        if isinstance(value, Param):
            name = value.name
            parameters.add(name)

            def step_param(runtime: Runtime) -> Collection[Row]:
                return ((runtime.params[name],),)

            return step_param
        rows: tuple[Row, ...] = ((value,),)

        def step_constant(runtime: Runtime) -> Collection[Row]:
            return rows

        return step_constant

    if isinstance(node, ViewScan):
        view_name = node.view_name

        def step_view(runtime: Runtime) -> Collection[Row]:
            try:
                cached = runtime.views[view_name]
            except KeyError:
                raise PlanError(
                    f"view {view_name!r} is not materialised in the view cache"
                ) from None
            runtime.meter.record_view_scan(len(cached))
            return cached

        return step_view

    if isinstance(node, FetchNode):
        return _compile_fetch(node, access_schema, parameters)

    if isinstance(node, ProjectNode):
        # π ∘ π composes positionally; collapsing the chain drops one
        # intermediate set per level without changing the final set.
        positions = [
            attribute_position(node.child.attributes, a, "projection")
            for a in node.kept
        ]
        child_node: PlanNode = node.child
        while isinstance(child_node, (ProjectNode, RenameNode)):
            if isinstance(child_node, ProjectNode):
                inner = [
                    attribute_position(child_node.child.attributes, a, "projection")
                    for a in child_node.kept
                ]
                positions = [inner[p] for p in positions]
            # renames change names, not positions — skip through them
            child_node = child_node.child

        if isinstance(child_node, SelectNode) and isinstance(
            child_node.child, ProductNode
        ):
            return _compile_join(
                child_node.child,
                lower_join(child_node),
                access_schema,
                parameters,
                project=tuple(positions),
            )
        fused = _fuse_fetch(child_node, access_schema, parameters, tuple(positions))
        if fused is not None:
            return fused

        project = tuple_extractor(tuple(positions))
        child = recurse(child_node)

        def step_project(runtime: Runtime) -> Collection[Row]:
            return set(map(project, child(runtime)))

        return step_project

    if isinstance(node, SelectNode):
        if isinstance(node.child, ProductNode):
            return _compile_join(
                node.child, lower_join(node), access_schema, parameters
            )
        if isinstance(node.child, FetchNode):
            fused = _fuse_fetch(node, access_schema, parameters, None)
            assert fused is not None
            return fused
        checks = lower_predicates(node.predicates, node.child.attributes, "selection")
        factory = _predicate_factory(checks, parameters)
        child = recurse(node.child)

        def step_select(runtime: Runtime) -> Collection[Row]:
            return list(filter(factory(runtime), child(runtime)))

        return step_select

    if isinstance(node, RenameNode):
        return recurse(node.child)

    if isinstance(node, ProductNode):
        return _compile_join(node, LoweredJoin((), (), ()), access_schema, parameters)

    if isinstance(node, UnionNode):
        left = recurse(node.left)
        right = recurse(node.right)

        def step_union(runtime: Runtime) -> Collection[Row]:
            out = set(left(runtime))
            out.update(right(runtime))
            return out

        return step_union

    if isinstance(node, DifferenceNode):
        left = recurse(node.left)
        right = recurse(node.right)

        def step_difference(runtime: Runtime) -> Collection[Row]:
            exclude = set(right(runtime))
            return [row for row in left(runtime) if row not in exclude]

        return step_difference

    raise PlanError(f"unknown plan node type {type(node).__name__}")


def _fuse_fetch(
    node: PlanNode,
    access_schema: AccessSchema,
    parameters: set[str],
    project_positions: tuple[int, ...] | None,
) -> Step | None:
    """Try to fuse a ``[π](σ)(fetch)`` chain into one fetch loop.

    Selection predicates and projections over a fetch node's output read
    columns the provider row already carries, so both remap through the
    fetch's output positions and run directly on provider rows — no
    intermediate collections, and the filter commutes with the final dedup.
    The fetch charging point is untouched.
    """
    checks: tuple[Check, ...] = ()
    fetch_node: FetchNode
    if isinstance(node, FetchNode):
        fetch_node = node
    elif isinstance(node, SelectNode) and isinstance(node.child, FetchNode):
        fetch_node = node.child
        checks = lower_predicates(node.predicates, fetch_node.attributes, "selection")
    else:
        return None
    return _compile_fetch(
        fetch_node,
        access_schema,
        parameters,
        checks=checks,
        project_positions=project_positions,
    )


def _remap_check(check: Check, positions: tuple[int, ...]) -> Check:
    """Rebase a lowered check from fetch-output layout to provider layout."""
    if isinstance(check, ConstantCheck):
        return ConstantCheck(positions[check.position], check.value, check.negated)
    return AttributeCheck(positions[check.left], positions[check.right], check.negated)


def _compile_fetch(
    node: FetchNode,
    access_schema: AccessSchema,
    parameters: set[str],
    checks: tuple[Check, ...] = (),
    project_positions: tuple[int, ...] | None = None,
) -> Step:
    """``fetch`` with the interpreter's key-dedup and charging points inlined.

    One seen-set guards the fetch (distinct keys only — the paper's ``S_j``
    has set semantics), and every returned tuple is charged to the meter in
    the same loop that pulls it, which is exactly the contract the kernel
    linter enforces on this module.  Fused selection ``checks`` and the fused
    ``project_positions`` (both expressed over the fetch node's output
    layout) are remapped onto the provider's row layout.
    """
    lowered = lower_fetch(node, access_schema)
    constraint, relation = lowered.constraint, node.relation
    output = lowered.output_positions
    if project_positions is not None:
        output = tuple(lowered.output_positions[p] for p in project_positions)
    project = tuple_extractor(output)
    factory = (
        _predicate_factory(
            tuple(_remap_check(c, lowered.output_positions) for c in checks),
            parameters,
        )
        if checks
        else None
    )

    if node.child is None:
        if factory is None:

            def step_fetch_empty(runtime: Runtime) -> Collection[Row]:
                fetched = runtime.provider.fetch(constraint, ())
                runtime.meter.record_fetch(relation, len(fetched))
                return set(map(project, fetched))

            return step_fetch_empty

        empty_factory = factory

        def step_fetch_empty_filtered(runtime: Runtime) -> Collection[Row]:
            fetched = runtime.provider.fetch(constraint, ())
            runtime.meter.record_fetch(relation, len(fetched))
            keep = empty_factory(runtime)
            return {project(row) for row in fetched if keep(row)}

        return step_fetch_empty_filtered

    child = _compile_step(node.child, access_schema, parameters)
    extract_key = tuple_extractor(lowered.key_positions)

    if factory is None:

        def step_fetch(runtime: Runtime) -> Collection[Row]:
            fetch = runtime.provider.fetch
            record_fetch = runtime.meter.record_fetch
            seen: set[Row] = set()
            mark = seen.add
            out: set[Row] = set()
            collect = out.update
            for row in child(runtime):
                key = extract_key(row)
                if key in seen:
                    continue
                mark(key)
                fetched = fetch(constraint, key)
                record_fetch(relation, len(fetched))
                collect(map(project, fetched))
            return out

        return step_fetch

    fetch_factory = factory

    def step_fetch_filtered(runtime: Runtime) -> Collection[Row]:
        fetch = runtime.provider.fetch
        record_fetch = runtime.meter.record_fetch
        keep = fetch_factory(runtime)
        seen: set[Row] = set()
        mark = seen.add
        out: set[Row] = set()
        add = out.add
        for row in child(runtime):
            key = extract_key(row)
            if key in seen:
                continue
            mark(key)
            fetched = fetch(constraint, key)
            record_fetch(relation, len(fetched))
            for fetched_row in fetched:
                if keep(fetched_row):
                    add(project(fetched_row))
        return out

    return step_fetch_filtered


#: Yields ``(left_row, bucket)`` for the left rows whose key has a match.
_MatchIter = Callable[
    [Runtime, Callable[[object], "list[Row] | None"]],
    "Iterator[tuple[Row, list[Row]]]",
]


def _product_factors(node: PlanNode) -> list[PlanNode]:
    """The leaves of a left-deep product chain, in concatenation order.

    ``×(×(×(A,B),C),D)`` flattens to ``[A, B, C, D]``; a product appearing as
    a *right* child stays one (materialised) factor — planners build their
    chains left-deep, and anything else falls back to the generic join.
    """
    factors: list[PlanNode] = []
    while isinstance(node, ProductNode):
        factors.insert(0, node.right)
        node = node.left
    factors.insert(0, node)
    return factors


def _factored_matches(
    product: ProductNode,
    lowered: LoweredJoin,
    access_schema: AccessSchema,
    parameters: set[str],
) -> _MatchIter | None:
    """Probe-first iteration when the probe side is itself a cross product.

    Planners routinely emit ``σ[k = k'](×(A × B, C))`` — and, for wider
    queries, arbitrary left-deep chains ``σ(×(×(×(A,B),C),D))`` — with the
    whole join key coming from one factor of the bare inner chain.
    Materialising the chain just to probe it wastes the full cross-product's
    concatenations; instead the keyed factor probes first and the other
    factors are expanded only on a match.  Every factor is still evaluated
    exactly once per execution — even when another factor is empty — so every
    fetch/view-scan charging point fires exactly as the interpreted
    ``HashJoin`` over the materialised product would.
    """
    inner = product.left
    if not isinstance(inner, ProductNode) or not lowered.left_key:
        return None
    factors = _product_factors(inner)
    offsets: list[int] = []
    offset = 0
    for factor in factors:
        offsets.append(offset)
        offset += len(factor.attributes)
    keyed_index = next(
        (
            index
            for index, factor in enumerate(factors)
            if all(
                offsets[index] <= p < offsets[index] + len(factor.attributes)
                for p in lowered.left_key
            )
        ),
        None,
    )
    if keyed_index is None:
        # The key spans factor boundaries.  Fall back to the coarse two-way
        # split at the top of the chain — the keyed "factor" is then itself a
        # (materialised) product, which is still better than materialising
        # the whole chain when the key lives in a prefix or suffix of it.
        split = len(inner.left.attributes)
        keyed_first = all(p < split for p in lowered.left_key)
        if not keyed_first and not all(p >= split for p in lowered.left_key):
            return None
        first = _compile_step(inner.left, access_schema, parameters)
        second = _compile_step(inner.right, access_schema, parameters)
        if keyed_first:
            key = key_extractor(lowered.left_key)

            def matches_first(
                runtime: Runtime, probe: Callable[[object], list[Row] | None]
            ) -> Iterator[tuple[Row, list[Row]]]:
                expand = second(runtime)
                for keyed_row in first(runtime):
                    bucket = probe(key(keyed_row))
                    if bucket:
                        for other_row in expand:
                            yield keyed_row + other_row, bucket

            return matches_first

        key = key_extractor(tuple(p - split for p in lowered.left_key))

        def matches_second(
            runtime: Runtime, probe: Callable[[object], list[Row] | None]
        ) -> Iterator[tuple[Row, list[Row]]]:
            expand = first(runtime)
            for keyed_row in second(runtime):
                bucket = probe(key(keyed_row))
                if bucket:
                    for other_row in expand:
                        yield other_row + keyed_row, bucket

        return matches_second

    steps = [_compile_step(factor, access_schema, parameters) for factor in factors]
    key = key_extractor(tuple(p - offsets[keyed_index] for p in lowered.left_key))
    keyed_step = steps[keyed_index]

    if len(factors) == 2:
        # Two factors: keep the allocation-free loops of the original
        # one-level factoring (no per-match itertools machinery).
        other_step = steps[1 - keyed_index]
        if keyed_index == 0:

            def matches_two_first(
                runtime: Runtime, probe: Callable[[object], list[Row] | None]
            ) -> Iterator[tuple[Row, list[Row]]]:
                expand = other_step(runtime)
                for keyed_row in keyed_step(runtime):
                    bucket = probe(key(keyed_row))
                    if bucket:
                        for other_row in expand:
                            yield keyed_row + other_row, bucket

            return matches_two_first

        def matches_two_second(
            runtime: Runtime, probe: Callable[[object], list[Row] | None]
        ) -> Iterator[tuple[Row, list[Row]]]:
            expand = other_step(runtime)
            for keyed_row in keyed_step(runtime):
                bucket = probe(key(keyed_row))
                if bucket:
                    for other_row in expand:
                        yield other_row + keyed_row, bucket

        return matches_two_second

    before_steps = steps[:keyed_index]
    after_steps = steps[keyed_index + 1 :]
    prefix_count = len(before_steps)

    def matches_chain(
        runtime: Runtime, probe: Callable[[object], list[Row] | None]
    ) -> Iterator[tuple[Row, list[Row]]]:
        # Every factor evaluates exactly once per execution, up front —
        # charging parity with the materialised chain — then only keyed rows
        # whose bucket matches pay for the cross-product expansion.
        others = [tuple(step(runtime)) for step in before_steps]
        others.extend(tuple(step(runtime)) for step in after_steps)
        for keyed_row in keyed_step(runtime):
            bucket = probe(key(keyed_row))
            if bucket:
                for combo in _iter_product(*others):
                    row: Row = ()
                    for part in combo[:prefix_count]:
                        row += part
                    row += keyed_row
                    for part in combo[prefix_count:]:
                        row += part
                    yield row, bucket

    return matches_chain


def _compile_join(
    product: ProductNode,
    lowered: LoweredJoin,
    access_schema: AccessSchema,
    parameters: set[str],
    project: tuple[int, ...] | None = None,
) -> Step:
    """Hash join with residual filter and projection fused into the probe loop.

    The build side (right input) is hashed once per execution; empty keys
    degrade to a cross product through a single bucket, mirroring the
    interpreter's ``HashJoin``.  With ``project`` set the join emits the
    projected rows directly into the output set; when every projected column
    comes from the probe side and there is no residual, the inner loop
    collapses to a bucket-existence test (a semi-join — every right match
    projects to the same row, which the set would dedup anyway).
    """
    right = _compile_step(product.right, access_schema, parameters)
    right_key = key_extractor(lowered.right_key)
    factory = (
        _predicate_factory(lowered.residual, parameters) if lowered.residual else None
    )
    matches = _factored_matches(product, lowered, access_schema, parameters)
    if matches is not None:
        return _compile_factored_join(
            matches, right, right_key, factory,
            len(product.left.attributes), project,
        )
    left = _compile_step(product.left, access_schema, parameters)
    left_key = key_extractor(lowered.left_key)

    if project is not None:
        left_width = len(product.left.attributes)
        if factory is None and all(p < left_width for p in project):
            extract = tuple_extractor(project)

            def step_join_semi(runtime: Runtime) -> Collection[Row]:
                table: dict[object, list[Row]] = {}
                bucket_for = table.setdefault
                for row in right(runtime):
                    bucket_for(right_key(row), []).append(row)
                probe = table.get
                out: set[Row] = set()
                add = out.add
                for left_row in left(runtime):
                    if probe(left_key(left_row)):
                        add(extract(left_row))
                return out

            return step_join_semi

        projector = tuple_extractor(project)
        project_factory = factory

        def step_join_project(runtime: Runtime) -> Collection[Row]:
            table: dict[object, list[Row]] = {}
            bucket_for = table.setdefault
            for row in right(runtime):
                bucket_for(right_key(row), []).append(row)
            probe = table.get
            keep = project_factory(runtime) if project_factory is not None else None
            out: set[Row] = set()
            add = out.add
            for left_row in left(runtime):
                bucket = probe(left_key(left_row))
                if bucket:
                    for right_row in bucket:
                        joined = left_row + right_row
                        if keep is None or keep(joined):
                            add(projector(joined))
            return out

        return step_join_project

    if factory is None:

        def step_join(runtime: Runtime) -> Collection[Row]:
            table: dict[object, list[Row]] = {}
            bucket_for = table.setdefault
            for row in right(runtime):
                bucket_for(right_key(row), []).append(row)
            probe = table.get
            out: list[Row] = []
            emit = out.append
            for left_row in left(runtime):
                bucket = probe(left_key(left_row))
                if bucket:
                    for right_row in bucket:
                        emit(left_row + right_row)
            return out

        return step_join

    residual_factory = factory

    def step_join_filtered(runtime: Runtime) -> Collection[Row]:
        table: dict[object, list[Row]] = {}
        bucket_for = table.setdefault
        for row in right(runtime):
            bucket_for(right_key(row), []).append(row)
        probe = table.get
        keep = residual_factory(runtime)
        out: list[Row] = []
        emit = out.append
        for left_row in left(runtime):
            bucket = probe(left_key(left_row))
            if bucket:
                for right_row in bucket:
                    joined = left_row + right_row
                    if keep(joined):
                        emit(joined)
        return out

    return step_join_filtered


def _compile_factored_join(
    matches: _MatchIter,
    right: Step,
    right_key: Callable[[Row], object],
    factory: Callable[[Runtime], Callable[[Row], bool]] | None,
    left_width: int,
    project: tuple[int, ...] | None,
) -> Step:
    """Join variants fed by a :func:`_factored_matches` probe-first iterator.

    Same four shapes as the inline loops in :func:`_compile_join`, but the
    probe side arrives pre-filtered to key matches, so the per-row loops only
    run on rows that will actually join.
    """
    if project is not None:
        if factory is None and all(p < left_width for p in project):
            extract = tuple_extractor(project)

            def step_factored_semi(runtime: Runtime) -> Collection[Row]:
                table: dict[object, list[Row]] = {}
                bucket_for = table.setdefault
                for row in right(runtime):
                    bucket_for(right_key(row), []).append(row)
                out: set[Row] = set()
                add = out.add
                for left_row, _bucket in matches(runtime, table.get):
                    add(extract(left_row))
                return out

            return step_factored_semi

        projector = tuple_extractor(project)
        project_factory = factory

        def step_factored_project(runtime: Runtime) -> Collection[Row]:
            table: dict[object, list[Row]] = {}
            bucket_for = table.setdefault
            for row in right(runtime):
                bucket_for(right_key(row), []).append(row)
            keep = project_factory(runtime) if project_factory is not None else None
            out: set[Row] = set()
            add = out.add
            for left_row, bucket in matches(runtime, table.get):
                for right_row in bucket:
                    joined = left_row + right_row
                    if keep is None or keep(joined):
                        add(projector(joined))
            return out

        return step_factored_project

    if factory is None:

        def step_factored_join(runtime: Runtime) -> Collection[Row]:
            table: dict[object, list[Row]] = {}
            bucket_for = table.setdefault
            for row in right(runtime):
                bucket_for(right_key(row), []).append(row)
            out: list[Row] = []
            emit = out.append
            for left_row, bucket in matches(runtime, table.get):
                for right_row in bucket:
                    emit(left_row + right_row)
            return out

        return step_factored_join

    residual_factory = factory

    def step_factored_filtered(runtime: Runtime) -> Collection[Row]:
        table: dict[object, list[Row]] = {}
        bucket_for = table.setdefault
        for row in right(runtime):
            bucket_for(right_key(row), []).append(row)
        keep = residual_factory(runtime)
        out: list[Row] = []
        emit = out.append
        for left_row, bucket in matches(runtime, table.get):
            for right_row in bucket:
                joined = left_row + right_row
                if keep(joined):
                    emit(joined)
        return out

    return step_factored_filtered


__all__ = [
    "CompiledPlan",
    "FetchProviderLike",
    "Runtime",
    "Step",
    "compile_closure_source",
    "compile_plan_closure",
]
