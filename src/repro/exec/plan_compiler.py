"""Compile bounded query plans (:mod:`repro.core.plans`) to operator trees.

This is the physical-planning half of :class:`repro.core.plan_eval
.PlanExecutor`: one operator per plan node, with two targeted rewrites that
preserve the semantics (and the exact I/O accounting) of the textbook
bottom-up evaluation:

* ``σ[l = r](left × right)`` compiles to a :class:`~repro.exec.operators
  .HashJoin` on the equated columns with residual predicates filtered on
  top — linear where materialising the product is quadratic;
* ``fetch`` compiles to :class:`~repro.exec.operators.IndexLookup`, which
  dedupes its keys internally (the paper's ``S_j`` has set semantics), so
  the recorded ``Dξ`` bag is identical to the eager evaluator's.

Set semantics is restored with :class:`~repro.exec.operators.Distinct`
after every non-injective operator (projection, union, index lookup); all
other operators preserve distinctness of their inputs.
"""

from __future__ import annotations

from typing import Callable, Collection, Mapping, Sequence

from ..algebra.terms import Param
from ..core.access import AccessSchema
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    Predicate,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from ..errors import PlanError
from .iometer import IOMeter
from .operators import (
    Distinct,
    HashJoin,
    IndexLookup,
    Operator,
    Project,
    Row,
    Scan,
    Select,
    SemiJoin,
    Union,
)


def _position(attributes: tuple[str, ...], attribute: str, where: str) -> int:
    """``attributes.index`` with a typed error naming the offending node."""
    try:
        return attributes.index(attribute)
    except ValueError as exc:
        raise PlanError(
            f"{where} refers to attribute {attribute!r} which its input does "
            f"not produce (input has {attributes})"
        ) from exc


def compile_plan(
    plan: PlanNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    """Compile a plan tree into an operator tree charging I/O to ``meter``.

    Unbound :class:`~repro.algebra.terms.Param` placeholders, fetches without
    a covering access constraint and attribute references the input does not
    produce are rejected here — as :class:`~repro.errors.PlanError` naming
    the offending node — before any data is touched.
    """
    return _compile(plan, access_schema, provider, view_cache, meter)


def _compile(
    node: PlanNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    def recurse(child: PlanNode) -> Operator:
        return _compile(child, access_schema, provider, view_cache, meter)

    if isinstance(node, ConstantScan):
        if isinstance(node.value, Param):
            raise PlanError(f"plan contains the unbound parameter {node.value}")
        return Scan(((node.value,),))

    if isinstance(node, ViewScan):
        if node.view_name not in view_cache:
            raise PlanError(
                f"view {node.view_name!r} is not materialised in the view cache"
            )
        return Scan(view_cache[node.view_name], meter=meter)

    if isinstance(node, FetchNode):
        constraint = node.covering_constraint(access_schema)
        if constraint is None:
            raise PlanError(
                f"fetch on {node.relation!r} has no covering access constraint; "
                "the plan does not conform to the access schema"
            )
        child_op = recurse(node.child) if node.child is not None else None
        key_positions = (
            tuple(
                _position(
                    node.child.attributes, a, f"fetch on {node.relation!r} key"
                )
                for a in constraint.x
            )
            if node.child is not None
            else ()
        )
        provider_attributes = constraint.output_attributes
        output_positions = tuple(
            _position(
                provider_attributes, a, f"fetch on {node.relation!r} output"
            )
            for a in node.attributes
        )
        return Distinct(
            IndexLookup(
                child_op,
                node.relation,
                constraint,
                provider,
                key_positions,
                output_positions,
                meter,
            )
        )

    if isinstance(node, ProjectNode):
        child_attributes = node.child.attributes
        positions = tuple(
            _position(child_attributes, a, "projection") for a in node.kept
        )
        return Distinct(Project(recurse(node.child), positions))

    if isinstance(node, SelectNode):
        _guard_predicates(node.predicates)
        if isinstance(node.child, ProductNode):
            return _compile_join(node, access_schema, provider, view_cache, meter)
        predicate = _predicate_closure(node.predicates, node.child.attributes)
        return Select(recurse(node.child), predicate)

    if isinstance(node, RenameNode):
        return recurse(node.child)

    if isinstance(node, ProductNode):
        return HashJoin(recurse(node.left), recurse(node.right), (), ())

    if isinstance(node, UnionNode):
        return Distinct(Union((recurse(node.left), recurse(node.right))))

    if isinstance(node, DifferenceNode):
        width = len(node.attributes)
        identity = tuple(range(width))
        return SemiJoin(
            recurse(node.left), recurse(node.right), identity, identity, anti=True
        )

    raise PlanError(f"unknown plan node type {type(node).__name__}")


def _compile_join(
    node: SelectNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    """``σ[l = r](left × right)`` as a hash join plus residual filter.

    Predicates that do not equate a left attribute with a right attribute
    (and the negated ones) stay as a residual selection over the product's
    attribute layout, so the result is identical to the naive evaluation.
    """
    product = node.child
    assert isinstance(product, ProductNode)
    left_attrs = product.left.attributes
    right_attrs = product.right.attributes
    join_pairs: list[tuple[int, int]] = []
    residual: list[Predicate] = []
    for predicate in node.predicates:
        if isinstance(predicate, AttributeEqualsAttribute) and not predicate.negated:
            if predicate.left in left_attrs and predicate.right in right_attrs:
                join_pairs.append(
                    (left_attrs.index(predicate.left), right_attrs.index(predicate.right))
                )
                continue
            if predicate.right in left_attrs and predicate.left in right_attrs:
                join_pairs.append(
                    (left_attrs.index(predicate.right), right_attrs.index(predicate.left))
                )
                continue
        residual.append(predicate)

    left = _compile(product.left, access_schema, provider, view_cache, meter)
    right = _compile(product.right, access_schema, provider, view_cache, meter)
    joined: Operator = HashJoin(
        left,
        right,
        tuple(p for p, _ in join_pairs),
        tuple(p for _, p in join_pairs),
    )
    if residual:
        joined = Select(joined, _predicate_closure(tuple(residual), product.attributes))
    return joined


def _guard_predicates(predicates: Sequence[Predicate]) -> None:
    """Reject unbound parameters once per node, before execution starts."""
    for predicate in predicates:
        if isinstance(predicate, AttributeEqualsConstant) and isinstance(
            predicate.value, Param
        ):
            raise PlanError(f"plan contains the unbound parameter {predicate.value}")


def _predicate_closure(
    predicates: Sequence[Predicate], attributes: tuple[str, ...]
) -> Callable[[Row], bool]:
    """Resolve predicate attribute names to positions once, not once per row."""
    checks: list[Callable[[Row], bool]] = []
    for predicate in predicates:
        if isinstance(predicate, AttributeEqualsConstant):
            position = _position(attributes, predicate.attribute, "selection")
            value, negated = predicate.value, predicate.negated

            def check_constant(
                row: Row,
                position: int = position,
                value: object = value,
                negated: bool = negated,
            ) -> bool:
                return (row[position] == value) != negated

            checks.append(check_constant)
        elif isinstance(predicate, AttributeEqualsAttribute):
            left = _position(attributes, predicate.left, "selection")
            right = _position(attributes, predicate.right, "selection")
            negated = predicate.negated

            def check_attributes(
                row: Row,
                left: int = left,
                right: int = right,
                negated: bool = negated,
            ) -> bool:
                return (row[left] == row[right]) != negated

            checks.append(check_attributes)
        else:  # pragma: no cover - defensive
            raise PlanError(f"unknown predicate type {type(predicate).__name__}")

    def passes(row: Row) -> bool:
        return all(check(row) for check in checks)

    return passes
