"""Compile bounded query plans (:mod:`repro.core.plans`) to operator trees.

This is the physical-planning half of :class:`repro.core.plan_eval
.PlanExecutor`: one operator per plan node, with two targeted rewrites that
preserve the semantics (and the exact I/O accounting) of the textbook
bottom-up evaluation:

* ``σ[l = r](left × right)`` compiles to a :class:`~repro.exec.operators
  .HashJoin` on the equated columns with residual predicates filtered on
  top — linear where materialising the product is quadratic;
* ``fetch`` compiles to :class:`~repro.exec.operators.IndexLookup`, which
  dedupes its keys internally (the paper's ``S_j`` has set semantics), so
  the recorded ``Dξ`` bag is identical to the eager evaluator's.

Set semantics is restored with :class:`~repro.exec.operators.Distinct`
after every non-injective operator (projection, union, index lookup); all
other operators preserve distinctness of their inputs.

The node-to-positions decisions (join split, fetch constraint resolution,
predicate position lowering) live in :mod:`repro.exec.lowering`, shared with
the codegen tier (:mod:`repro.exec.codegen`) so both execution tiers realise
the same physical semantics from the same specs.
"""

from __future__ import annotations

from typing import Callable, Collection, Mapping, Sequence

from ..algebra.terms import Param
from ..core.access import AccessSchema
from ..core.plans import (
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    Predicate,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from ..errors import PlanError
from .iometer import IOMeter
from .lowering import (
    Check,
    ConstantCheck,
    attribute_position,
    lower_fetch,
    lower_join,
    lower_predicates,
)
from .operators import (
    Distinct,
    HashJoin,
    IndexLookup,
    Operator,
    Project,
    Row,
    Scan,
    Select,
    SemiJoin,
    Union,
)


def compile_plan(
    plan: PlanNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    """Compile a plan tree into an operator tree charging I/O to ``meter``.

    Unbound :class:`~repro.algebra.terms.Param` placeholders, fetches without
    a covering access constraint and attribute references the input does not
    produce are rejected here — as :class:`~repro.errors.PlanError` naming
    the offending node — before any data is touched.
    """
    return _compile(plan, access_schema, provider, view_cache, meter)


def _compile(
    node: PlanNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    def recurse(child: PlanNode) -> Operator:
        return _compile(child, access_schema, provider, view_cache, meter)

    if isinstance(node, ConstantScan):
        if isinstance(node.value, Param):
            raise PlanError(f"plan contains the unbound parameter {node.value}")
        return Scan(((node.value,),))

    if isinstance(node, ViewScan):
        if node.view_name not in view_cache:
            raise PlanError(
                f"view {node.view_name!r} is not materialised in the view cache"
            )
        return Scan(view_cache[node.view_name], meter=meter)

    if isinstance(node, FetchNode):
        lowered = lower_fetch(node, access_schema)
        child_op = recurse(node.child) if node.child is not None else None
        return Distinct(
            IndexLookup(
                child_op,
                node.relation,
                lowered.constraint,
                provider,
                lowered.key_positions,
                lowered.output_positions,
                meter,
            )
        )

    if isinstance(node, ProjectNode):
        child_attributes = node.child.attributes
        positions = tuple(
            attribute_position(child_attributes, a, "projection") for a in node.kept
        )
        return Distinct(Project(recurse(node.child), positions))

    if isinstance(node, SelectNode):
        _guard_predicates(node.predicates)
        if isinstance(node.child, ProductNode):
            return _compile_join(node, access_schema, provider, view_cache, meter)
        checks = lower_predicates(node.predicates, node.child.attributes, "selection")
        return Select(recurse(node.child), _predicate_closure(checks))

    if isinstance(node, RenameNode):
        return recurse(node.child)

    if isinstance(node, ProductNode):
        return HashJoin(recurse(node.left), recurse(node.right), (), ())

    if isinstance(node, UnionNode):
        return Distinct(Union((recurse(node.left), recurse(node.right))))

    if isinstance(node, DifferenceNode):
        width = len(node.attributes)
        identity = tuple(range(width))
        return SemiJoin(
            recurse(node.left), recurse(node.right), identity, identity, anti=True
        )

    raise PlanError(f"unknown plan node type {type(node).__name__}")


def _compile_join(
    node: SelectNode,
    access_schema: AccessSchema,
    provider: object,
    view_cache: Mapping[str, Collection[Row]],
    meter: IOMeter,
) -> Operator:
    """``σ[l = r](left × right)`` as a hash join plus residual filter.

    The key/residual split comes from :func:`repro.exec.lowering.lower_join`,
    so the result is identical to the naive evaluation — and to the codegen
    tier's fused join closure.
    """
    product = node.child
    assert isinstance(product, ProductNode)
    lowered = lower_join(node)
    left = _compile(product.left, access_schema, provider, view_cache, meter)
    right = _compile(product.right, access_schema, provider, view_cache, meter)
    joined: Operator = HashJoin(left, right, lowered.left_key, lowered.right_key)
    if lowered.residual:
        joined = Select(joined, _predicate_closure(lowered.residual))
    return joined


def _guard_predicates(predicates: Sequence[Predicate]) -> None:
    """Reject unbound parameters once per node, before execution starts."""
    for predicate in predicates:
        if isinstance(predicate, AttributeEqualsConstant) and isinstance(
            predicate.value, Param
        ):
            raise PlanError(f"plan contains the unbound parameter {predicate.value}")


def _predicate_closure(checks: Sequence[Check]) -> Callable[[Row], bool]:
    """Turn lowered position checks into one per-row predicate closure."""
    closures: list[Callable[[Row], bool]] = []
    for check in checks:
        if isinstance(check, ConstantCheck):
            if isinstance(check.value, Param):
                raise PlanError(f"plan contains the unbound parameter {check.value}")
            position, value, negated = check.position, check.value, check.negated

            def check_constant(
                row: Row,
                position: int = position,
                value: object = value,
                negated: bool = negated,
            ) -> bool:
                return (row[position] == value) != negated

            closures.append(check_constant)
        else:
            left, right, negated = check.left, check.right, check.negated

            def check_attributes(
                row: Row,
                left: int = left,
                right: int = right,
                negated: bool = negated,
            ) -> bool:
                return (row[left] == row[right]) != negated

            closures.append(check_attributes)

    if len(closures) == 1:
        return closures[0]

    def passes(row: Row) -> bool:
        return all(check(row) for check in closures)

    return passes


__all__ = ["compile_plan"]
