"""Relational database schemas.

A :class:`DatabaseSchema` is a collection of :class:`RelationSchema` objects,
each naming a relation and fixing an ordered tuple of attribute names.  All
queries, views, access constraints, instances and query plans in this library
are defined against a database schema, mirroring the paper's setting where
queries, views and access schemas are "all defined over the same database
schema R".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A relation name together with its ordered attributes.

    >>> movie = RelationSchema("movie", ("mid", "mname", "studio", "release"))
    >>> movie.arity
    4
    >>> movie.position("studio")
    2
    """

    name: str
    attributes: tuple[str, ...]

    def __init__(self, name: str, attributes: Iterable[str]) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {attrs}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the index of ``attribute`` within the relation."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from exc

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return the indices of a sequence of attributes, preserving order."""
        return tuple(self.position(attr) for attr in attributes)

    def has_attributes(self, attributes: Iterable[str]) -> bool:
        """Return ``True`` when all ``attributes`` belong to this relation."""
        own = set(self.attributes)
        return all(attr in own for attr in attributes)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """A database schema: a set of relation schemas addressable by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; re-adding an identical schema is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise SchemaError(
                f"relation {relation.name!r} already declared with different attributes"
            )
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r}; known: {sorted(self._relations)}") from exc

    @property
    def relations(self) -> Mapping[str, RelationSchema]:
        """Read-only view of the relation schemas keyed by name."""
        return dict(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DatabaseSchema({', '.join(str(r) for r in self)})"

    def restricted_to(self, names: Iterable[str]) -> "DatabaseSchema":
        """Return a new schema containing only the named relations."""
        return DatabaseSchema(self.relation(name) for name in names)

    def merged_with(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Return the union of two schemas (they must agree on shared names)."""
        merged = DatabaseSchema(self)
        for relation in other:
            merged.add(relation)
        return merged


def schema_from_spec(spec: Mapping[str, Iterable[str]]) -> DatabaseSchema:
    """Build a schema from a ``{relation_name: attribute_names}`` mapping.

    >>> schema = schema_from_spec({"rating": ("mid", "rank")})
    >>> schema.relation("rating").arity
    2
    """
    return DatabaseSchema(RelationSchema(name, attrs) for name, attrs in spec.items())
