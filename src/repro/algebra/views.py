"""Views: named, L-definable queries whose results are cached.

A view ``V`` is a query (CQ, UCQ or FO) together with a name and an explicit
output head.  Views are the second ingredient of bounded rewriting: a bounded
plan may scan cached view results ``V(D)`` freely (no I/O cost is charged for
them), while access to the base relations goes through ``fetch`` operations
controlled by the access schema.

:class:`ViewSet` groups the views used by a rewriting problem and provides
the extended schema (base relations plus one virtual relation per view) that
queries over views are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import QueryError, SchemaError, UnsupportedQueryError
from .cq import ConjunctiveQuery
from .fo import FOQuery, classify_language, from_cq, from_ucq
from .schema import DatabaseSchema, RelationSchema
from .terms import Constant, Term, Variable
from .ucq import UnionQuery

ViewDefinition = ConjunctiveQuery | UnionQuery | FOQuery


@dataclass(frozen=True)
class View:
    """A named view with an explicit output head.

    For CQ/UCQ definitions the head defaults to the definition's own head; FO
    definitions have no intrinsic head, so one must be supplied (a tuple of
    the free variables of the definition in output order).
    """

    name: str
    definition: ViewDefinition
    head: tuple[Term, ...]

    def __init__(
        self,
        name: str,
        definition: ViewDefinition,
        head: Sequence[Term] | None = None,
    ) -> None:
        if isinstance(definition, (ConjunctiveQuery, UnionQuery)):
            default_head = (
                definition.head
                if isinstance(definition, ConjunctiveQuery)
                else definition.disjuncts[0].head
            )
            resolved_head = tuple(head) if head is not None else tuple(default_head)
            if len(resolved_head) != len(default_head):
                raise QueryError(
                    f"view {name!r}: head arity {len(resolved_head)} does not match "
                    f"definition arity {len(default_head)}"
                )
        elif isinstance(definition, FOQuery):
            if head is None:
                raise QueryError(
                    f"view {name!r}: FO definitions require an explicit head"
                )
            resolved_head = tuple(head)
            if not definition.free_variables <= {
                t for t in resolved_head if isinstance(t, Variable)
            }:
                raise QueryError(
                    f"view {name!r}: head does not cover the free variables of the definition"
                )
        else:
            raise QueryError(
                f"view {name!r}: unsupported definition type {type(definition).__name__}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "definition", definition)
        object.__setattr__(self, "head", resolved_head)

    # ------------------------------------------------------------------ #

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def language(self) -> str:
        """The language of the definition: ``"CQ"``, ``"UCQ"``, ``"EFO+"`` or ``"FO"``."""
        if isinstance(self.definition, ConjunctiveQuery):
            return "CQ"
        if isinstance(self.definition, UnionQuery):
            return "UCQ"
        return classify_language(self.definition)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Output attribute names: head variable names, or positional names."""
        names: list[str] = []
        seen: set[str] = set()
        for index, term in enumerate(self.head):
            if isinstance(term, Variable) and term.name not in seen:
                names.append(term.name)
                seen.add(term.name)
            else:
                fresh = f"{self.name}_a{index}"
                names.append(fresh)
                seen.add(fresh)
        return tuple(names)

    def relation_schema(self) -> RelationSchema:
        """The virtual relation schema under which the view can be referenced."""
        return RelationSchema(self.name, self.attributes)

    def as_ucq(self) -> UnionQuery:
        """Return the definition as a UCQ (only for CQ/UCQ views)."""
        if isinstance(self.definition, ConjunctiveQuery):
            return UnionQuery((self.definition,), name=self.name)
        if isinstance(self.definition, UnionQuery):
            return self.definition
        raise UnsupportedQueryError(
            f"view {self.name!r} is defined in FO and has no UCQ form"
        )

    def as_fo(self) -> FOQuery:
        """Return the definition as an FO formula (head order given by ``self.head``)."""
        if isinstance(self.definition, ConjunctiveQuery):
            return from_cq(self.definition)
        if isinstance(self.definition, UnionQuery):
            return from_ucq(self.definition)
        return self.definition

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        return tuple(t for t in self.head if isinstance(t, Variable))

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        return f"{self.name}({head}) := {self.definition}"


class ViewSet:
    """A collection of views addressable by name."""

    def __init__(self, views: Iterable[View] = ()) -> None:
        self._views: dict[str, View] = {}
        for view in views:
            self.add(view)

    def add(self, view: View) -> None:
        if view.name in self._views and self._views[view.name] != view:
            raise SchemaError(f"view {view.name!r} already defined differently")
        self._views[view.name] = view

    def view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError as exc:
            raise SchemaError(f"unknown view {name!r}; known: {sorted(self._views)}") from exc

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def extended_schema(self, base: DatabaseSchema) -> DatabaseSchema:
        """Base schema extended with one virtual relation per view."""
        extended = DatabaseSchema(base)
        for view in self:
            extended.add(view.relation_schema())
        return extended

    def languages(self) -> frozenset[str]:
        return frozenset(view.language for view in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ViewSet({', '.join(self.names)})"


def views_from_mapping(definitions: Mapping[str, ViewDefinition]) -> ViewSet:
    """Build a :class:`ViewSet` from ``{name: definition}`` (CQ/UCQ only)."""
    views = []
    for name, definition in definitions.items():
        views.append(View(name, definition))
    return ViewSet(views)
