"""A small text syntax for conjunctive queries, unions and access constraints.

Writing queries by assembling :class:`RelationAtom` objects is precise but
verbose; examples, tests and interactive exploration benefit from a compact
Datalog-like notation.  This module parses

* conjunctive queries::

      Q(x, y) :- R(x, 'a'), S(y, x), x = y

  Lower-case bare identifiers are variables; quoted strings and numbers are
  constants; ``:name`` is a named parameter (a constant bound at execution
  time through a prepared query).  Equality conditions may appear among the
  body conjuncts.

* unions of conjunctive queries — several rules with the same head name and
  arity, separated by ``;`` or given as separate strings;

* access constraints::

      movie(studio, release -> mid, 100)
      rating(mid -> rank, 1)
      Ror(-> B, A1, A2, 4)          # empty X

The grammar is deliberately tiny (no comments, no aggregation, no negation);
anything richer should be built with the programmatic API.  Parse errors
raise :class:`repro.errors.QueryError` with a position-annotated message.
"""

from __future__ import annotations

import re
from typing import Iterator, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..errors import QueryError
from .atoms import EqualityAtom, RelationAtom
from .cq import ConjunctiveQuery
from .terms import Constant, Param, Term, Variable
from .ucq import QueryLike, UnionQuery


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-|<-)
  | (?P<param>:[A-Za-z_][A-Za-z_0-9]*)
  | (?P<implies>->)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[(),;=])
    """,
    re.VERBOSE,
)


class _Token:
    """A lexical token with its kind, text and input position."""

    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_Token({self.kind}, {self.text!r}, {self.position})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_PATTERN.match(source, index)
        if match is None:
            raise QueryError(
                f"unexpected character {source[index]!r} at position {index} in {source!r}"
            )
        index = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _TokenStream:
    """Cursor over a token list with convenience accessors."""

    def __init__(self, tokens: Sequence[_Token], source: str) -> None:
        self._tokens = list(tokens)
        self._source = source
        self._index = 0

    # ------------------------------------------------------------------ #

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    def peek(self) -> _Token | None:
        if self.exhausted:
            return None
        return self._tokens[self._index]

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise QueryError(
                f"expected {wanted!r} at position {token.position} in "
                f"{self._source!r}, found {token.text!r}"
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self._index += 1
        return token


def _constant_value(token: _Token) -> object:
    if token.kind == "string":
        return token.text[1:-1]
    if token.kind == "number":
        text = token.text
        return float(text) if "." in text else int(text)
    raise QueryError(f"token {token.text!r} is not a constant")


def _parse_term(stream: _TokenStream, variable_names: set[str]) -> Term:
    """Parse one term: a variable name, a quoted string or a number."""
    token = stream.next()
    if token.kind == "name":
        variable_names.add(token.text)
        return Variable(token.text)
    if token.kind in ("string", "number"):
        return Constant(_constant_value(token))
    if token.kind == "param":
        return Constant(Param(token.text[1:]))
    raise QueryError(
        f"expected a term at position {token.position}, found {token.text!r}"
    )


def _parse_term_list(stream: _TokenStream, variable_names: set[str]) -> list[Term]:
    stream.expect("punct", "(")
    terms: list[Term] = []
    if stream.accept("punct", ")"):
        return terms
    terms.append(_parse_term(stream, variable_names))
    while stream.accept("punct", ","):
        terms.append(_parse_term(stream, variable_names))
    stream.expect("punct", ")")
    return terms


def _parse_body_conjunct(
    stream: _TokenStream, variable_names: set[str]
) -> RelationAtom | EqualityAtom:
    """One body conjunct: either ``R(t1, ..., tk)`` or ``t1 = t2``."""
    first = stream.peek()
    if first is None:
        raise QueryError("unexpected end of input while reading the query body")
    if first.kind == "name":
        follower = stream._tokens[stream._index + 1] if stream._index + 1 < len(stream._tokens) else None
        if follower is not None and follower.kind == "punct" and follower.text == "(":
            relation = stream.expect("name").text
            terms = _parse_term_list(stream, variable_names)
            return RelationAtom(relation, terms)
    left = _parse_term(stream, variable_names)
    stream.expect("punct", "=")
    right = _parse_term(stream, variable_names)
    return EqualityAtom(left, right)


def _parse_rule(stream: _TokenStream) -> ConjunctiveQuery:
    """Parse one rule ``Name(head) :- body``; the body may be empty."""
    variable_names: set[str] = set()
    name_token = stream.expect("name")
    head = _parse_term_list(stream, variable_names)
    atoms: list[RelationAtom] = []
    equalities: list[EqualityAtom] = []
    if stream.accept("arrow") is not None:
        conjunct = _parse_body_conjunct(stream, variable_names)
        _append_conjunct(conjunct, atoms, equalities)
        while stream.accept("punct", ","):
            conjunct = _parse_body_conjunct(stream, variable_names)
            _append_conjunct(conjunct, atoms, equalities)
    return ConjunctiveQuery(
        head=head, atoms=tuple(atoms), equalities=tuple(equalities), name=name_token.text
    )


def _append_conjunct(
    conjunct: RelationAtom | EqualityAtom,
    atoms: list[RelationAtom],
    equalities: list[EqualityAtom],
) -> None:
    if isinstance(conjunct, RelationAtom):
        atoms.append(conjunct)
    else:
        equalities.append(conjunct)


def parse_cq(source: str) -> ConjunctiveQuery:
    """Parse a single conjunctive query from its textual form.

    >>> q = parse_cq("Q(x) :- movie(x, y, 'Universal', '2014'), rating(x, 5)")
    >>> q.name, q.head_arity, len(q.atoms)
    ('Q', 1, 2)
    """
    stream = _TokenStream(_tokenize(source), source)
    query = _parse_rule(stream)
    if not stream.exhausted:
        token = stream.peek()
        assert token is not None
        raise QueryError(
            f"trailing input at position {token.position} in {source!r}: {token.text!r}"
        )
    return query


def parse_ucq(source: str) -> UnionQuery:
    """Parse a union of conjunctive queries: rules separated by ``;``.

    All rules must share the same head arity (they usually also share the
    same head name, but this is not enforced — the union takes the first
    rule's name).

    >>> u = parse_ucq("Q(x) :- R(x, 1) ; Q(x) :- S(x, 2)")
    >>> len(u.disjuncts)
    2
    """
    stream = _TokenStream(_tokenize(source), source)
    disjuncts = [_parse_rule(stream)]
    while stream.accept("punct", ";"):
        disjuncts.append(_parse_rule(stream))
    if not stream.exhausted:
        token = stream.peek()
        assert token is not None
        raise QueryError(
            f"trailing input at position {token.position} in {source!r}: {token.text!r}"
        )
    return UnionQuery(tuple(disjuncts), name=disjuncts[0].name)


def parse_query(source: str) -> QueryLike:
    """Parse a query string, returning a CQ or a UCQ as appropriate.

    A single rule yields a :class:`ConjunctiveQuery`; several rules separated
    by ``;`` yield a :class:`UnionQuery`.  This is the dispatcher behind the
    string form of :meth:`repro.engine.service.QueryService.query`.

    >>> type(parse_query("Q(x) :- R(x, 1)")).__name__
    'ConjunctiveQuery'
    >>> type(parse_query("Q(x) :- R(x, 1) ; Q(x) :- S(x, 2)")).__name__
    'UnionQuery'
    """
    union = parse_ucq(source)
    if len(union.disjuncts) == 1:
        return union.disjuncts[0]
    return union


def parse_access_constraint(source: str) -> AccessConstraint:
    """Parse an access constraint ``R(X -> Y, N)``.

    ``X`` and ``Y`` are comma-separated attribute names; ``X`` may be empty
    (constraints of the form ``R(∅ -> Y, N)`` are written ``R(-> Y, N)``).

    >>> str(parse_access_constraint("movie(studio, release -> mid, 100)"))
    'movie((studio, release) -> (mid), 100)'
    """
    stream = _TokenStream(_tokenize(source), source)
    relation = stream.expect("name").text
    stream.expect("punct", "(")
    x_attrs: list[str] = []
    while stream.peek() is not None and stream.peek().kind == "name":  # type: ignore[union-attr]
        x_attrs.append(stream.expect("name").text)
        if stream.accept("punct", ",") is None:
            break
    stream.expect("implies")
    y_attrs: list[str] = [stream.expect("name").text]
    bound: int | None = None
    while stream.accept("punct", ","):
        token = stream.next()
        if token.kind == "name":
            y_attrs.append(token.text)
        elif token.kind == "number":
            bound = int(token.text)
            break
        else:
            raise QueryError(
                f"expected an attribute or the bound at position {token.position} "
                f"in {source!r}, found {token.text!r}"
            )
    if bound is None:
        raise QueryError(f"access constraint {source!r} is missing its bound N")
    stream.expect("punct", ")")
    if not stream.exhausted:
        token = stream.peek()
        assert token is not None
        raise QueryError(
            f"trailing input at position {token.position} in {source!r}: {token.text!r}"
        )
    return AccessConstraint(relation, tuple(x_attrs), tuple(y_attrs), bound)


def parse_access_schema(source: str | Sequence[str]) -> AccessSchema:
    """Parse a whole access schema: one constraint per line (or per list item).

    Blank lines are skipped.

    >>> schema = parse_access_schema('''
    ...     movie(studio, release -> mid, 100)
    ...     rating(mid -> rank, 1)
    ... ''')
    >>> len(schema)
    2
    """
    if isinstance(source, str):
        lines: Iterator[str] = iter(source.splitlines())
    else:
        lines = iter(source)
    constraints = [
        parse_access_constraint(line.strip()) for line in lines if line.strip()
    ]
    return AccessSchema(constraints)
