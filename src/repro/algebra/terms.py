"""Terms of the query languages: variables and constants.

Queries in this library are built from :class:`Variable` and
:class:`Constant` terms.  Both are immutable and hashable so they can be used
freely inside sets, dictionaries, tableaux and canonical databases.

Variables compare by name; constants compare by wrapped value.  A variable is
never equal to a constant, even when the variable name and the constant value
coincide, which keeps canonical databases (where variables play the role of
labelled nulls) unambiguous.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Constant:
    """A constant value appearing in a query.

    The wrapped ``value`` can be any hashable Python object (strings and
    integers in practice).
    """

    value: Hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, order=True)
class Param:
    """A named placeholder for a constant bound at execution time.

    Parameters appear *inside* constants — ``Constant(Param("studio"))`` — so
    the whole planning stack (homomorphisms, conformance, SQL rendering of
    plan shape) treats them as opaque constant values.  The prepared-query
    machinery (:meth:`repro.engine.service.QueryService.prepare`) substitutes
    the actual value into the finished plan, which is what lets one planned
    query be re-executed with different constants without re-planning.

    In the textual syntax a parameter is written ``:name``::

        Q(y) :- R(:key, y)
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f":{self.name}"

    def __str__(self) -> str:
        return f":{self.name}"


Term = Union[Variable, Constant]


def is_parameter(term: object) -> bool:
    """Return ``True`` for a :class:`Constant` wrapping a :class:`Param`."""
    return isinstance(term, Constant) and isinstance(term.value, Param)


def is_variable(term: object) -> bool:
    """Return ``True`` if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return ``True`` if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def as_term(value: object) -> Term:
    """Coerce ``value`` into a term.

    Strings are *not* implicitly turned into variables: only existing
    :class:`Variable`/:class:`Constant` instances pass through unchanged, any
    other hashable value is wrapped as a :class:`Constant`.  Use
    :func:`variables` (or construct :class:`Variable` directly) when variables
    are intended.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def variables(names: str | Iterable[str]) -> tuple[Variable, ...]:
    """Create a tuple of variables from a whitespace separated string.

    >>> variables("x y z")
    (?x, ?y, ?z)
    """
    if isinstance(names, str):
        names = names.split()
    return tuple(Variable(name) for name in names)


class FreshVariableFactory:
    """Produces variables guaranteed not to clash with a set of used names.

    The factory is handy when renaming queries apart (e.g. while unfolding
    view definitions into a plan) or when introducing existential variables
    for unconstrained attributes of a fetched relation.
    """

    def __init__(self, used: Iterable[str] = (), prefix: str = "_v") -> None:
        self._used = set(used)
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, names: Iterable[str]) -> None:
        """Mark additional names as used."""
        self._used.update(names)

    def fresh(self, hint: str | None = None) -> Variable:
        """Return a fresh variable, optionally based on ``hint``."""
        base = hint if hint else self._prefix
        candidate = base
        while candidate in self._used:
            candidate = f"{base}_{next(self._counter)}"
        self._used.add(candidate)
        return Variable(candidate)

    def fresh_many(self, count: int, hint: str | None = None) -> tuple[Variable, ...]:
        """Return ``count`` fresh variables."""
        return tuple(self.fresh(hint) for _ in range(count))


def term_names(terms: Iterable[Term]) -> Iterator[str]:
    """Yield the names of all variables appearing in ``terms``."""
    for term in terms:
        if isinstance(term, Variable):
            yield term.name
