"""Classical (constraint-free) containment and equivalence of CQs and UCQs.

``Q1 ⊆ Q2`` means ``Q1(D) ⊆ Q2(D)`` for *all* instances ``D`` — the
conventional notion, NP-complete for CQ [Chandra & Merlin 1977].  The
constraint-aware notion ``Q1 ⊑_A Q2`` of the paper lives in
:mod:`repro.core.equivalence` and reduces to the classical notion on element
queries.

For acyclic containing queries the test is polynomial: checking a
homomorphism from an ACQ into a canonical database amounts to evaluating the
ACQ on that database, which Yannakakis' algorithm does in PTIME
(:func:`acyclic_contained_in`).
"""

from __future__ import annotations

from ..errors import QueryError
from .acyclicity import is_acyclic
from .cq import ConjunctiveQuery
from .evaluation import evaluate_cq_yannakakis
from .homomorphism import homomorphism_between
from .ucq import QueryLike, UnionQuery, as_union


def cq_contained_in(query: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """Chandra–Merlin test: ``query ⊆ container``.

    Holds iff there is a homomorphism from ``container`` into the tableau of
    ``query`` mapping head to summary.  An unsatisfiable ``query`` is
    contained in everything.
    """
    if not query.is_satisfiable():
        return True
    return homomorphism_between(container, query) is not None


def acyclic_contained_in(query: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """PTIME containment test for an *acyclic* containing query.

    Evaluates ``container`` over the canonical database of ``query`` with
    Yannakakis' algorithm and checks that the summary is among the answers
    (paper, Lemma 4.3(b) relies on exactly this).
    """
    if query.head_arity != container.head_arity:
        raise QueryError("containment requires queries of equal head arity")
    if not query.is_satisfiable():
        return True
    if not is_acyclic(container):
        raise QueryError(f"container {container.name!r} is not acyclic")
    tableau = query.tableau()
    answers = evaluate_cq_yannakakis(container, tableau.facts())
    return tableau.summary_values() in answers


def cq_contained_in_ucq(query: ConjunctiveQuery, container: UnionQuery) -> bool:
    """``query ⊆ container`` for a CQ against a UCQ.

    By Sagiv–Yannakakis, a CQ is contained in a UCQ iff it is contained in
    one of its disjuncts.
    """
    if not query.is_satisfiable():
        return True
    return any(cq_contained_in(query, disjunct) for disjunct in container.disjuncts)


def contained_in(query: QueryLike, container: QueryLike) -> bool:
    """Classical containment for CQs and UCQs on either side."""
    left = as_union(query)
    right = as_union(container)
    if left.head_arity != right.head_arity:
        raise QueryError("containment requires queries of equal head arity")
    return all(cq_contained_in_ucq(disjunct, right) for disjunct in left.disjuncts)


def equivalent(query: QueryLike, other: QueryLike) -> bool:
    """Classical equivalence: mutual containment."""
    return contained_in(query, other) and contained_in(other, query)


def is_satisfiable(query: QueryLike) -> bool:
    """A CQ/UCQ is satisfiable unless every disjunct equates distinct constants."""
    union = as_union(query)
    return any(disjunct.is_satisfiable() for disjunct in union.disjuncts)


def minimal_disjuncts(query: UnionQuery) -> UnionQuery:
    """Remove disjuncts subsumed by other disjuncts (a simple UCQ minimisation)."""
    kept: list[ConjunctiveQuery] = []
    disjuncts = list(query.satisfiable_disjuncts())
    for index, disjunct in enumerate(disjuncts):
        others = disjuncts[:index] + disjuncts[index + 1 :]
        subsumed = any(
            cq_contained_in(disjunct, other)
            for other in others
            if not (cq_contained_in(other, disjunct) and others.index(other) < index)
        )
        redundant = False
        for other_index, other in enumerate(disjuncts):
            if other_index == index:
                continue
            if cq_contained_in(disjunct, other):
                # Keep only one representative of mutually equivalent disjuncts.
                if not cq_contained_in(other, disjunct) or other_index < index:
                    redundant = True
                    break
        if not redundant:
            kept.append(disjunct)
        del subsumed
    if not kept and disjuncts:
        kept.append(disjuncts[0])
    if not kept:
        return query
    return UnionQuery(tuple(kept), name=query.name)
