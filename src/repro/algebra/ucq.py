"""Unions of conjunctive queries (UCQ / SPCU queries).

A UCQ ``Q(x̄) = Q1(x̄) ∪ ... ∪ Qk(x̄)`` is a non-empty sequence of conjunctive
queries sharing the same head arity.  UCQs are the normal form we use for
positive existential FO queries (∃FO+) throughout the core algorithms: every
∃FO+ query can be written as a UCQ (possibly exponentially larger), see
Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import QueryError
from .cq import ConjunctiveQuery, check_same_arity
from .schema import DatabaseSchema
from .terms import Constant, Variable


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with a common head arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str = "Q") -> None:
        disjuncts = tuple(disjuncts)
        check_same_arity(disjuncts)
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "name", name)

    @property
    def head_arity(self) -> int:
        return self.disjuncts[0].head_arity

    @property
    def is_boolean(self) -> bool:
        return self.head_arity == 0

    @property
    def is_single_cq(self) -> bool:
        return len(self.disjuncts) == 1

    @property
    def variables(self) -> frozenset[Variable]:
        found: set[Variable] = set()
        for disjunct in self.disjuncts:
            found.update(disjunct.variables)
        return frozenset(found)

    @property
    def constants(self) -> frozenset[Constant]:
        found: set[Constant] = set()
        for disjunct in self.disjuncts:
            found.update(disjunct.constants)
        return frozenset(found)

    @property
    def relation_names(self) -> frozenset[str]:
        names: set[str] = set()
        for disjunct in self.disjuncts:
            names.update(disjunct.relation_names)
        return frozenset(names)

    def validate(self, schema: DatabaseSchema) -> None:
        for disjunct in self.disjuncts:
            disjunct.validate(schema)

    def satisfiable_disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        """Drop unsatisfiable disjuncts (their equalities equate constants)."""
        return tuple(d for d in self.disjuncts if d.is_satisfiable())

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return " ∪ ".join(str(d) for d in self.disjuncts)


QueryLike = ConjunctiveQuery | UnionQuery


def as_union(query: QueryLike, name: str | None = None) -> UnionQuery:
    """Coerce a CQ or UCQ into a :class:`UnionQuery`."""
    if isinstance(query, UnionQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,), name=name if name is not None else query.name)
    raise QueryError(f"expected a CQ or UCQ, got {type(query).__name__}")


def union_of(queries: Iterable[QueryLike], name: str = "Q") -> UnionQuery:
    """Flatten a collection of CQs/UCQs into a single UCQ."""
    disjuncts: list[ConjunctiveQuery] = []
    for query in queries:
        disjuncts.extend(as_union(query).disjuncts)
    return UnionQuery(tuple(disjuncts), name=name)
