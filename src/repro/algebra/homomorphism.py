"""Homomorphism search between conjunctive queries and fact sets.

The classical Chandra–Merlin characterisation reduces CQ containment and CQ
evaluation to the existence of homomorphisms: ``Q1 ⊆ Q2`` iff there is a
homomorphism from ``Q2`` into the canonical database (tableau) of ``Q1``
mapping the head of ``Q2`` to the summary of ``Q1``.

A *fact set* here is a mapping ``relation name -> collection of value
tuples``.  Values can be arbitrary hashable objects; in canonical databases
the remaining variables of a tableau appear as values themselves (labelled
nulls).  A homomorphism maps every variable of the source query to a value
such that each atom becomes a fact of the target, and constants map to their
own value.
"""

from __future__ import annotations

from typing import Collection, Iterator, Mapping, Sequence

from ..errors import QueryError
from .atoms import RelationAtom
from .cq import ConjunctiveQuery
from .terms import Constant, Term, Variable

FactSet = Mapping[str, Collection[tuple]]
Assignment = dict[Variable, object]


def _term_value(term: Term, assignment: Assignment) -> object | None:
    """Value of ``term`` under ``assignment`` or ``None`` when unbound."""
    if isinstance(term, Constant):
        return term.value
    return assignment.get(term)


def _order_atoms(atoms: Sequence[RelationAtom], facts: FactSet) -> list[RelationAtom]:
    """Order atoms to make backtracking effective.

    Atoms over small relations and atoms with many constants are placed
    early; afterwards we greedily prefer atoms sharing variables with the
    already-placed prefix (to keep the search connected).
    """
    remaining = list(atoms)
    ordered: list[RelationAtom] = []
    bound: set[Variable] = set()

    def cost(atom: RelationAtom) -> tuple:
        relation_size = len(facts.get(atom.relation, ()))
        bound_positions = sum(
            1 for t in atom.terms if isinstance(t, Constant) or t in bound
        )
        return (-bound_positions, relation_size)

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


def _match_atom(
    atom: RelationAtom, facts: FactSet, assignment: Assignment
) -> Iterator[Assignment]:
    """Yield extensions of ``assignment`` matching ``atom`` against ``facts``."""
    candidates = facts.get(atom.relation, ())
    for fact in candidates:
        if len(fact) != len(atom.terms):
            continue
        extension: Assignment = {}
        consistent = True
        for term, value in zip(atom.terms, fact):
            expected = _term_value(term, assignment)
            if expected is None:
                expected = extension.get(term)  # type: ignore[arg-type]
            if expected is None:
                extension[term] = value  # type: ignore[index]
            elif expected != value:
                consistent = False
                break
        if consistent:
            merged = dict(assignment)
            merged.update(extension)
            yield merged


def iter_homomorphisms(
    query: ConjunctiveQuery,
    facts: FactSet,
    head_values: Sequence[object] | None = None,
) -> Iterator[Assignment]:
    """Yield homomorphisms from ``query`` into ``facts``.

    When ``head_values`` is given, only homomorphisms mapping the query head
    (position-wise) onto those values are produced.  The query is normalised
    first, so its equality atoms are honoured.
    """
    normalized = query.normalize()
    assignment: Assignment = {}
    if head_values is not None:
        if len(head_values) != len(normalized.head):
            raise QueryError(
                f"head of {query.name!r} has arity {len(normalized.head)}, "
                f"got {len(head_values)} required values"
            )
        for term, value in zip(normalized.head, head_values):
            if isinstance(term, Constant):
                if term.value != value:
                    return
            else:
                bound = assignment.get(term)
                if bound is None:
                    assignment[term] = value
                elif bound != value:
                    return

    ordered = _order_atoms(normalized.atoms, facts)

    def backtrack(index: int, current: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(current)
            return
        for extended in _match_atom(ordered[index], facts, current):
            yield from backtrack(index + 1, extended)

    yield from backtrack(0, assignment)


def find_homomorphism(
    query: ConjunctiveQuery,
    facts: FactSet,
    head_values: Sequence[object] | None = None,
) -> Assignment | None:
    """Return one homomorphism (or ``None``) from ``query`` into ``facts``."""
    if not query.is_satisfiable():
        return None
    for assignment in iter_homomorphisms(query, facts, head_values):
        return assignment
    return None


def has_homomorphism(
    query: ConjunctiveQuery,
    facts: FactSet,
    head_values: Sequence[object] | None = None,
) -> bool:
    """Existence version of :func:`find_homomorphism`."""
    return find_homomorphism(query, facts, head_values) is not None


def homomorphism_between(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Assignment | None:
    """Homomorphism from ``source`` into the tableau of ``target``.

    This is the Chandra–Merlin test witnessing ``target ⊆ source``.  The
    returned assignment maps variables of ``source`` to values of the
    canonical database of ``target`` (constants or labelled nulls).
    """
    if source.head_arity != target.head_arity:
        raise QueryError(
            "homomorphism_between requires queries of the same head arity: "
            f"{source.name!r} has {source.head_arity}, {target.name!r} has {target.head_arity}"
        )
    if not target.is_satisfiable():
        # The canonical database of an unsatisfiable query is undefined; by
        # convention every query maps into it (target is empty everywhere).
        return {}
    tableau = target.tableau()
    return find_homomorphism(source, tableau.facts(), tableau.summary_values())
