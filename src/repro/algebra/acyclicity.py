"""Hypergraphs of conjunctive queries, acyclicity (ACQ) and join trees.

A CQ is *acyclic* (hypertree-width 1) when the GYO reduction of its
hypergraph succeeds (Section 4 of the paper).  The hypergraph has the query's
variables as vertices and one hyperedge per relation atom, containing the
variables of that atom.

Acyclic conjunctive queries admit PTIME evaluation and containment via join
trees (Yannakakis' algorithm); :mod:`repro.algebra.evaluation` uses the join
tree produced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .atoms import RelationAtom
from .cq import ConjunctiveQuery
from .terms import Variable


@dataclass(frozen=True)
class Hyperedge:
    """A hyperedge: the variable set of one atom (identified by atom index)."""

    index: int
    atom: RelationAtom
    variables: frozenset[Variable]


@dataclass
class JoinTree:
    """A join tree over atom indices: ``parent[i]`` is the parent of atom i.

    Roots have parent ``None``.  A join tree exists exactly for acyclic
    queries; queries whose hypergraph has several connected components yield a
    forest (several roots), which is still fine for Yannakakis-style
    processing.
    """

    parent: dict[int, int | None] = field(default_factory=dict)

    @property
    def roots(self) -> list[int]:
        return [index for index, parent in self.parent.items() if parent is None]

    def children(self, index: int) -> list[int]:
        return [child for child, parent in self.parent.items() if parent == index]

    def post_order(self) -> list[int]:
        """Indices in post-order (children before parents)."""
        order: list[int] = []
        visited: set[int] = set()

        def visit(node: int) -> None:
            if node in visited:
                return
            visited.add(node)
            for child in self.children(node):
                visit(child)
            order.append(node)

        for root in self.roots:
            visit(root)
        return order


def hypergraph(query: ConjunctiveQuery) -> list[Hyperedge]:
    """Return the hyperedges of the (normalised) query."""
    normalized = query.normalize()
    return [
        Hyperedge(index=i, atom=atom, variables=frozenset(atom.variables))
        for i, atom in enumerate(normalized.atoms)
    ]


def gyo_reduction(edges: Sequence[Hyperedge]) -> JoinTree | None:
    """Run the GYO (Graham / Yu–Özsoyoğlu) reduction.

    Returns a :class:`JoinTree` when the hypergraph is acyclic, ``None``
    otherwise.  An *ear* is a hyperedge ``e`` such that every vertex of ``e``
    is either exclusive to ``e`` or contained in some single other hyperedge
    ``f``; ears are repeatedly removed and attached to their witness ``f``.
    """
    remaining: dict[int, frozenset[Variable]] = {e.index: e.variables for e in edges}
    tree = JoinTree(parent={e.index: None for e in edges})

    if not remaining:
        return tree

    changed = True
    while changed and len(remaining) > 1:
        changed = False
        # Count in how many remaining edges each vertex occurs.
        occurrence: dict[Variable, int] = {}
        for variables in remaining.values():
            for variable in variables:
                occurrence[variable] = occurrence.get(variable, 0) + 1

        for index in list(remaining):
            variables = remaining[index]
            shared = {v for v in variables if occurrence.get(v, 0) > 1}
            witness: int | None = None
            if not shared:
                # Isolated edge: it forms its own component; detach it.
                witness_found = True
            else:
                witness_found = False
                for other_index, other_variables in remaining.items():
                    if other_index == index:
                        continue
                    if shared <= other_variables:
                        witness = other_index
                        witness_found = True
                        break
            if witness_found:
                del remaining[index]
                if witness is not None:
                    tree.parent[index] = witness
                changed = True
                break

    if len(remaining) <= 1:
        return tree
    return None


def join_tree(query: ConjunctiveQuery) -> JoinTree | None:
    """Return a join tree of ``query`` or ``None`` when it is cyclic."""
    return gyo_reduction(hypergraph(query))


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Return ``True`` when the CQ is acyclic (an ACQ)."""
    return join_tree(query) is not None


def is_self_join_free(query: ConjunctiveQuery) -> bool:
    """True when no relation name is repeated among the atoms (Section 4)."""
    normalized = query.normalize()
    names = [atom.relation for atom in normalized.atoms]
    return len(names) == len(set(names))
