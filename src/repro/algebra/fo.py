"""First-order (relational calculus) queries.

The paper studies four query languages: CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO.  CQ and UCQ
have dedicated classes (:mod:`repro.algebra.cq`, :mod:`repro.algebra.ucq`);
this module provides the full FO abstract syntax tree used for

* ∃FO+ queries (no negation, no universal quantification), which can be
  converted to UCQs with :func:`to_ucq`;
* full FO queries, as needed by the effective syntax of Section 5 (topped and
  size-bounded queries) and by the FO bounded-rewriting examples;
* active-domain evaluation (:func:`evaluate_fo`), the semantics used in the
  paper's examples and tests.

FO queries have no built-in head; whenever an ordered output is needed the
caller supplies the tuple of free variables (see :class:`repro.algebra.views.View`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Collection, Iterable, Mapping, Sequence

from ..errors import QueryError, UnsupportedQueryError
from .atoms import EqualityAtom, RelationAtom
from .cq import ConjunctiveQuery
from .evaluation import FactSet, active_domain
from .terms import Constant, FreshVariableFactory, Term, Variable, as_term
from .ucq import UnionQuery


# --------------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------------- #


class FOQuery:
    """Base class of first-order query expressions."""

    @property
    def free_variables(self) -> frozenset[Variable]:
        raise NotImplementedError

    @property
    def constants(self) -> frozenset[Constant]:
        raise NotImplementedError

    @property
    def relation_names(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        raise NotImplementedError

    def size(self) -> int:
        """Number of atoms in the formula (the |Q| measure of Section 5)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FOTrue(FOQuery):
    """The tautology query ``Qε`` — neutral element of conjunction."""

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset()

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return self

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FOAtom(FOQuery):
    """A relation (or view) atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[object]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(as_term(t) for t in terms))

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset({self.relation})

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return FOAtom(self.relation, tuple(mapping.get(t, t) for t in self.terms))

    def size(self) -> int:
        return 1

    def to_relation_atom(self) -> RelationAtom:
        return RelationAtom(self.relation, self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class FOEquality(FOQuery):
    """An equality or inequality condition between two terms."""

    left: Term
    right: Term
    negated: bool = False

    def __init__(self, left: object, right: object, negated: bool = False) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))
        object.__setattr__(self, "negated", bool(negated))

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Constant))

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return FOEquality(
            mapping.get(self.left, self.left),
            mapping.get(self.right, self.right),
            self.negated,
        )

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True)
class FOAnd(FOQuery):
    """Conjunction of sub-queries."""

    children: tuple[FOQuery, ...]

    def __init__(self, children: Iterable[FOQuery]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise QueryError("conjunction requires at least one conjunct")

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(c.free_variables for c in self.children))

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset().union(*(c.constants for c in self.children))

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset().union(*(c.relation_names for c in self.children))

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return FOAnd(tuple(c.substitute(mapping) for c in self.children))

    def size(self) -> int:
        return sum(c.size() for c in self.children)

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class FOOr(FOQuery):
    """Disjunction of sub-queries."""

    children: tuple[FOQuery, ...]

    def __init__(self, children: Iterable[FOQuery]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise QueryError("disjunction requires at least one disjunct")

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(c.free_variables for c in self.children))

    @property
    def constants(self) -> frozenset[Constant]:
        return frozenset().union(*(c.constants for c in self.children))

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset().union(*(c.relation_names for c in self.children))

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return FOOr(tuple(c.substitute(mapping) for c in self.children))

    def size(self) -> int:
        return sum(c.size() for c in self.children)

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class FONot(FOQuery):
    """Negation of a sub-query."""

    child: FOQuery

    @property
    def free_variables(self) -> frozenset[Variable]:
        return self.child.free_variables

    @property
    def constants(self) -> frozenset[Constant]:
        return self.child.constants

    @property
    def relation_names(self) -> frozenset[str]:
        return self.child.relation_names

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        return FONot(self.child.substitute(mapping))

    def size(self) -> int:
        return self.child.size()

    def __str__(self) -> str:
        return f"¬{self.child}"


@dataclass(frozen=True)
class FOExists(FOQuery):
    """Existential quantification ``∃ variables . child``."""

    variables: tuple[Variable, ...]
    child: FOQuery

    def __init__(self, variables: Iterable[Variable], child: FOQuery) -> None:
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "child", child)

    @property
    def free_variables(self) -> frozenset[Variable]:
        return self.child.free_variables - frozenset(self.variables)

    @property
    def constants(self) -> frozenset[Constant]:
        return self.child.constants

    @property
    def relation_names(self) -> frozenset[str]:
        return self.child.relation_names

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        safe_mapping = {
            key: value for key, value in mapping.items() if key not in self.variables
        }
        return FOExists(self.variables, self.child.substitute(safe_mapping))

    def size(self) -> int:
        return self.child.size()

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"∃{names}. {self.child}"


@dataclass(frozen=True)
class FOForAll(FOQuery):
    """Universal quantification ``∀ variables . child``."""

    variables: tuple[Variable, ...]
    child: FOQuery

    def __init__(self, variables: Iterable[Variable], child: FOQuery) -> None:
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "child", child)

    @property
    def free_variables(self) -> frozenset[Variable]:
        return self.child.free_variables - frozenset(self.variables)

    @property
    def constants(self) -> frozenset[Constant]:
        return self.child.constants

    @property
    def relation_names(self) -> frozenset[str]:
        return self.child.relation_names

    def substitute(self, mapping: Mapping[Term, Term]) -> "FOQuery":
        safe_mapping = {
            key: value for key, value in mapping.items() if key not in self.variables
        }
        return FOForAll(self.variables, self.child.substitute(safe_mapping))

    def size(self) -> int:
        return self.child.size()

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"∀{names}. {self.child}"


# --------------------------------------------------------------------------- #
# Convenience constructors
# --------------------------------------------------------------------------- #


def atom(relation: str, *terms: object) -> FOAtom:
    """Relation/view atom constructor."""
    return FOAtom(relation, terms)


def eq(left: object, right: object) -> FOEquality:
    return FOEquality(left, right, negated=False)


def neq(left: object, right: object) -> FOEquality:
    return FOEquality(left, right, negated=True)


def conj(*children: FOQuery) -> FOQuery:
    flattened = [c for c in children if not isinstance(c, FOTrue)]
    if not flattened:
        return FOTrue()
    if len(flattened) == 1:
        return flattened[0]
    return FOAnd(tuple(flattened))


def disj(*children: FOQuery) -> FOQuery:
    if len(children) == 1:
        return children[0]
    return FOOr(tuple(children))


def neg(child: FOQuery) -> FONot:
    return FONot(child)


def exists(variables: Sequence[Variable], child: FOQuery) -> FOQuery:
    if not variables:
        return child
    return FOExists(tuple(variables), child)


def forall(variables: Sequence[Variable], child: FOQuery) -> FOQuery:
    if not variables:
        return child
    return FOForAll(tuple(variables), child)


# --------------------------------------------------------------------------- #
# Language classification and conversions
# --------------------------------------------------------------------------- #


def is_positive_existential(query: FOQuery) -> bool:
    """True when the query uses no negation and no universal quantification."""
    if isinstance(query, (FOTrue, FOAtom)):
        return True
    if isinstance(query, FOEquality):
        return not query.negated
    if isinstance(query, (FOAnd, FOOr)):
        return all(is_positive_existential(c) for c in query.children)
    if isinstance(query, FOExists):
        return is_positive_existential(query.child)
    if isinstance(query, (FONot, FOForAll)):
        return False
    raise UnsupportedQueryError(f"unknown FO node {type(query).__name__}")


def is_disjunction_free(query: FOQuery) -> bool:
    """True when the query uses no disjunction (so ∃FO+ collapses to CQ)."""
    if isinstance(query, (FOTrue, FOAtom, FOEquality)):
        return True
    if isinstance(query, FOAnd):
        return all(is_disjunction_free(c) for c in query.children)
    if isinstance(query, FOOr):
        return False
    if isinstance(query, (FOExists, FOForAll)):
        return is_disjunction_free(query.child)
    if isinstance(query, FONot):
        return is_disjunction_free(query.child)
    raise UnsupportedQueryError(f"unknown FO node {type(query).__name__}")


def classify_language(query: FOQuery) -> str:
    """Return the smallest language of {CQ, UCQ, EFO+, FO} containing ``query``.

    UCQ is reported when disjunction occurs only at the top level (under the
    outermost existential quantifiers); otherwise positive-existential queries
    are classified as ``"EFO+"``.
    """
    if not is_positive_existential(query):
        return "FO"
    if is_disjunction_free(query):
        return "CQ"

    def strip_exists(q: FOQuery) -> FOQuery:
        while isinstance(q, FOExists):
            q = q.child
        return q

    stripped = strip_exists(query)
    if isinstance(stripped, FOOr):
        if all(is_disjunction_free(strip_exists(c)) for c in stripped.children):
            return "UCQ"
    return "EFO+"


def rectify(query: FOQuery, factory: FreshVariableFactory | None = None) -> FOQuery:
    """Rename bound variables apart from free variables and from each other."""
    if factory is None:
        used_names = {v.name for v in query.free_variables} | _all_variable_names(query)
        factory = FreshVariableFactory(used=used_names)

    def rename(q: FOQuery, mapping: dict[Term, Term]) -> FOQuery:
        if isinstance(q, (FOTrue,)):
            return q
        if isinstance(q, (FOAtom, FOEquality)):
            return q.substitute(mapping)
        if isinstance(q, FOAnd):
            return FOAnd(tuple(rename(c, mapping) for c in q.children))
        if isinstance(q, FOOr):
            return FOOr(tuple(rename(c, mapping) for c in q.children))
        if isinstance(q, FONot):
            return FONot(rename(q.child, mapping))
        if isinstance(q, (FOExists, FOForAll)):
            fresh = {var: factory.fresh(var.name) for var in q.variables}
            new_mapping = dict(mapping)
            new_mapping.update(fresh)
            renamed_child = rename(q.child, new_mapping)
            new_vars = tuple(fresh[var] for var in q.variables)
            cls = FOExists if isinstance(q, FOExists) else FOForAll
            return cls(new_vars, renamed_child)
        raise UnsupportedQueryError(f"unknown FO node {type(q).__name__}")

    return rename(query, {})


def _all_variable_names(query: FOQuery) -> set[str]:
    names: set[str] = set()

    def visit(q: FOQuery) -> None:
        if isinstance(q, FOAtom):
            names.update(v.name for v in q.free_variables)
        elif isinstance(q, FOEquality):
            names.update(v.name for v in q.free_variables)
        elif isinstance(q, (FOAnd, FOOr)):
            for child in q.children:
                visit(child)
        elif isinstance(q, FONot):
            visit(q.child)
        elif isinstance(q, (FOExists, FOForAll)):
            names.update(v.name for v in q.variables)
            visit(q.child)

    visit(query)
    return names


def to_ucq(query: FOQuery, head: Sequence[Term], name: str = "Q") -> UnionQuery:
    """Convert an ∃FO+ query with output tuple ``head`` into a UCQ.

    The conversion distributes conjunction over disjunction and may therefore
    produce exponentially many disjuncts (Sagiv–Yannakakis), exactly as noted
    in Section 2 of the paper.  Raises :class:`UnsupportedQueryError` for
    queries using negation or universal quantification.
    """
    if not is_positive_existential(query):
        raise UnsupportedQueryError(
            "only positive existential FO queries can be converted to UCQ"
        )
    rectified = rectify(query)
    branches = _branches(rectified)
    head_terms = tuple(as_term(t) for t in head)
    disjuncts = []
    for index, (atoms, equalities) in enumerate(branches):
        disjuncts.append(
            ConjunctiveQuery(
                head=head_terms,
                atoms=tuple(atoms),
                equalities=tuple(equalities),
                name=f"{name}_{index}",
            )
        )
    return UnionQuery(tuple(disjuncts), name=name)


def _branches(query: FOQuery) -> list[tuple[list[RelationAtom], list[EqualityAtom]]]:
    """Return the DNF branches of an ∃FO+ query as (atoms, equalities) pairs."""
    if isinstance(query, FOTrue):
        return [([], [])]
    if isinstance(query, FOAtom):
        return [([query.to_relation_atom()], [])]
    if isinstance(query, FOEquality):
        return [([], [EqualityAtom(query.left, query.right)])]
    if isinstance(query, FOExists):
        return _branches(query.child)
    if isinstance(query, FOOr):
        result: list[tuple[list[RelationAtom], list[EqualityAtom]]] = []
        for child in query.children:
            result.extend(_branches(child))
        return result
    if isinstance(query, FOAnd):
        result = [([], [])]
        for child in query.children:
            child_branches = _branches(child)
            result = [
                (atoms + c_atoms, eqs + c_eqs)
                for atoms, eqs in result
                for c_atoms, c_eqs in child_branches
            ]
        return result
    raise UnsupportedQueryError(f"cannot convert {type(query).__name__} to UCQ")


def from_cq(query: ConjunctiveQuery) -> FOQuery:
    """Express a CQ as an FO query (existentially closing non-head variables)."""
    conjuncts: list[FOQuery] = [FOAtom(a.relation, a.terms) for a in query.atoms]
    conjuncts.extend(
        FOEquality(e.left, e.right, e.negated) for e in query.equalities
    )
    body = conj(*conjuncts) if conjuncts else FOTrue()
    bound = sorted(query.existential_variables, key=lambda v: v.name)
    return exists(bound, body)


def from_ucq(query: UnionQuery) -> FOQuery:
    """Express a UCQ as an FO query (a disjunction of the disjuncts' FO forms)."""
    return disj(*(from_cq(d) for d in query.disjuncts))


# --------------------------------------------------------------------------- #
# Active-domain evaluation
# --------------------------------------------------------------------------- #


def satisfies(
    query: FOQuery,
    facts: FactSet,
    assignment: Mapping[Variable, object],
    domain: Collection[object],
) -> bool:
    """Active-domain satisfaction of ``query`` under ``assignment``."""
    if isinstance(query, FOTrue):
        return True
    if isinstance(query, FOAtom):
        row = []
        for term in query.terms:
            if isinstance(term, Constant):
                row.append(term.value)
            else:
                if term not in assignment:
                    raise QueryError(f"free variable {term} is not assigned")
                row.append(assignment[term])
        return tuple(row) in set(map(tuple, facts.get(query.relation, ())))
    if isinstance(query, FOEquality):
        def value(term: Term) -> object:
            if isinstance(term, Constant):
                return term.value
            if term not in assignment:
                raise QueryError(f"free variable {term} is not assigned")
            return assignment[term]

        return query.negated != (value(query.left) == value(query.right))
    if isinstance(query, FOAnd):
        return all(satisfies(c, facts, assignment, domain) for c in query.children)
    if isinstance(query, FOOr):
        return any(satisfies(c, facts, assignment, domain) for c in query.children)
    if isinstance(query, FONot):
        return not satisfies(query.child, facts, assignment, domain)
    if isinstance(query, FOExists):
        return _quantify(query.variables, query.child, facts, assignment, domain, any)
    if isinstance(query, FOForAll):
        return _quantify(query.variables, query.child, facts, assignment, domain, all)
    raise UnsupportedQueryError(f"unknown FO node {type(query).__name__}")


def _quantify(variables, child, facts, assignment, domain, combine) -> bool:
    def outcomes():
        for values in itertools.product(domain, repeat=len(variables)):
            extended = dict(assignment)
            extended.update(zip(variables, values))
            yield satisfies(child, facts, extended, domain)

    return combine(outcomes())


def evaluate_fo(
    query: FOQuery,
    facts: FactSet,
    head: Sequence[Variable] = (),
    domain: Collection[object] | None = None,
) -> set[tuple]:
    """Evaluate an FO query under active-domain semantics.

    ``head`` lists the free variables forming the output tuple (in order); it
    must cover all free variables of the query.  The evaluation enumerates
    assignments of head variables over the active domain, so it is meant for
    modest instances (tests, examples, the canonical databases used in
    decision procedures) — the engine's bounded plans are the scalable path.
    """
    head = tuple(head)
    free = query.free_variables
    if not free <= set(head):
        missing = ", ".join(sorted(str(v) for v in free - set(head)))
        raise QueryError(f"head does not cover free variables: {missing}")
    if domain is None:
        domain = active_domain(facts, (c.value for c in query.constants))
    answers: set[tuple] = set()
    for values in itertools.product(domain, repeat=len(head)):
        assignment = dict(zip(head, values))
        if satisfies(query, facts, assignment, domain):
            answers.add(tuple(values))
    return answers
