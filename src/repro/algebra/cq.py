"""Conjunctive queries (CQ / SPC queries) and their tableau representation.

A conjunctive query ``Q(x̄) = ∃x̄' φ(x̄, x̄')`` is represented by

* a **head**: the tuple of output terms ``x̄`` (variables or constants),
* a conjunction of **relation atoms**, and
* a conjunction of **equality atoms** between variables and constants.

The *tableau representation* ``(T_Q, ū)`` (paper, Section 3.1) is obtained by
transitively applying the equality atoms: variables that are equated are
merged, variables equated to a constant become that constant.  The tableau is
the set of resulting relation atoms viewed as an instance whose "values" are
constants and the remaining variables (labelled nulls); the summary ``ū`` is
the head after the same substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import QueryError, SchemaError
from .atoms import EqualityAtom, RelationAtom
from .schema import DatabaseSchema
from .terms import Constant, FreshVariableFactory, Term, Variable, as_term


class _UnionFind:
    """Union-find over terms used to normalise equality atoms."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.get(term, term)
        if parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> bool:
        """Merge the classes of ``left`` and ``right``.

        Returns ``False`` when the merge is inconsistent, i.e. it would equate
        two distinct constants.
        """
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return True
        left_const = isinstance(root_left, Constant)
        right_const = isinstance(root_right, Constant)
        if left_const and right_const:
            return False
        if left_const:
            # Constants are always class representatives.
            self._parent[root_right] = root_left
        else:
            self._parent[root_left] = root_right
        return True

    def representative_map(self, terms: Iterable[Term]) -> dict[Term, Term]:
        return {term: self.find(term) for term in terms}


@dataclass(frozen=True)
class Tableau:
    """Tableau representation ``(T_Q, ū)`` of a conjunctive query."""

    atoms: frozenset[RelationAtom]
    summary: tuple[Term, ...]

    def facts(self) -> dict[str, set[tuple]]:
        """Return the tableau as facts: relation name -> set of value tuples.

        Constants contribute their wrapped value; variables contribute the
        :class:`Variable` object itself, playing the role of a labelled null.
        This is exactly the *canonical database* used for containment tests
        and for the constructions in the paper's proofs.
        """
        facts: dict[str, set[tuple]] = {}
        for atom in self.atoms:
            values = tuple(
                term.value if isinstance(term, Constant) else term for term in atom.terms
            )
            facts.setdefault(atom.relation, set()).add(values)
        return facts

    def summary_values(self) -> tuple:
        """Summary with constants unwrapped (variables stay as objects)."""
        return tuple(
            term.value if isinstance(term, Constant) else term for term in self.summary
        )

    @property
    def variables(self) -> frozenset[Variable]:
        found: set[Variable] = set()
        for atom in self.atoms:
            found.update(atom.variables)
        found.update(t for t in self.summary if isinstance(t, Variable))
        return frozenset(found)

    def __str__(self) -> str:
        atoms = " ∧ ".join(sorted(str(a) for a in self.atoms))
        head = ", ".join(str(t) for t in self.summary)
        return f"({head}) <- {atoms}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``Q(head) :- atoms, equalities``.

    >>> from repro.algebra.terms import variables
    >>> x, y = variables("x y")
    >>> q = ConjunctiveQuery(head=(x,), atoms=(RelationAtom("R", (x, y)),))
    >>> q.head_arity
    1
    """

    head: tuple[Term, ...]
    atoms: tuple[RelationAtom, ...]
    equalities: tuple[EqualityAtom, ...] = ()
    name: str = "Q"

    def __init__(
        self,
        head: Sequence[object],
        atoms: Sequence[RelationAtom] = (),
        equalities: Sequence[EqualityAtom] = (),
        name: str = "Q",
    ) -> None:
        object.__setattr__(self, "head", tuple(as_term(t) for t in head))
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "equalities", tuple(equalities))
        object.__setattr__(self, "name", name)
        for equality in self.equalities:
            if equality.negated:
                raise QueryError(
                    f"conjunctive queries admit only equality conditions, got {equality}"
                )

    # ------------------------------------------------------------------ #
    # Structural accessors
    # ------------------------------------------------------------------ #

    @property
    def head_arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    @property
    def variables(self) -> frozenset[Variable]:
        """All variables of the query (free and existentially quantified)."""
        found: set[Variable] = set(t for t in self.head if isinstance(t, Variable))
        for atom in self.atoms:
            found.update(atom.variables)
        for equality in self.equalities:
            found.update(equality.variables)
        return frozenset(found)

    @property
    def head_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.head if isinstance(t, Variable))

    @property
    def existential_variables(self) -> frozenset[Variable]:
        return self.variables - self.head_variables

    @property
    def constants(self) -> frozenset[Constant]:
        found: set[Constant] = set(t for t in self.head if isinstance(t, Constant))
        for atom in self.atoms:
            found.update(atom.constants)
        for equality in self.equalities:
            for term in (equality.left, equality.right):
                if isinstance(term, Constant):
                    found.add(term)
        return frozenset(found)

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset(atom.relation for atom in self.atoms)

    def validate(self, schema: DatabaseSchema) -> None:
        """Check atoms against ``schema`` and the safety of head variables."""
        for atom in self.atoms:
            atom.validate(schema)
        body_vars = set()
        for atom in self.atoms:
            body_vars.update(atom.variables)
        # A head variable is safe if it occurs in the body or is equated
        # (possibly transitively) to a constant or body variable.
        mapping = self._equality_mapping()
        for term in self.head:
            if isinstance(term, Variable):
                resolved = mapping.get(term, term)
                if isinstance(resolved, Variable) and resolved not in {
                    mapping.get(v, v) for v in body_vars
                }:
                    raise QueryError(
                        f"head variable {term} of query {self.name!r} does not occur "
                        "in the body and is not equated to a body term"
                    )

    # ------------------------------------------------------------------ #
    # Normalisation and the tableau representation
    # ------------------------------------------------------------------ #

    def _union_find(self) -> _UnionFind | None:
        """Build the union-find induced by the equality atoms.

        Returns ``None`` when the equalities are inconsistent (two distinct
        constants are equated), i.e. the query is unsatisfiable.
        """
        uf = _UnionFind()
        for equality in self.equalities:
            if not uf.union(equality.left, equality.right):
                return None
        return uf

    def _equality_mapping(self) -> dict[Term, Term]:
        uf = self._union_find()
        if uf is None:
            return {}
        return uf.representative_map(self.variables)

    def is_satisfiable(self) -> bool:
        """A CQ is unsatisfiable only if its equalities equate two constants."""
        return self._union_find() is not None

    def normalize(self) -> "ConjunctiveQuery":
        """Fold the equality atoms into the relation atoms and the head.

        The result has no equality atoms; equated variables are replaced by a
        single representative, and variables equated to a constant are
        replaced by that constant.  Raises :class:`QueryError` when the query
        is unsatisfiable.
        """
        uf = self._union_find()
        if uf is None:
            raise QueryError(f"query {self.name!r} is unsatisfiable (constants equated)")
        mapping = uf.representative_map(self.variables)
        atoms = tuple(atom.substitute(mapping) for atom in self.atoms)
        head = tuple(mapping.get(term, term) for term in self.head)
        return ConjunctiveQuery(head=head, atoms=atoms, equalities=(), name=self.name)

    def tableau(self) -> Tableau:
        """Return the tableau representation ``(T_Q, ū)`` of the query."""
        normalized = self.normalize()
        return Tableau(atoms=frozenset(normalized.atoms), summary=normalized.head)

    # ------------------------------------------------------------------ #
    # Term-level rewriting helpers
    # ------------------------------------------------------------------ #

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to head, atoms and equalities."""
        return ConjunctiveQuery(
            head=tuple(mapping.get(t, t) for t in self.head),
            atoms=tuple(atom.substitute(mapping) for atom in self.atoms),
            equalities=tuple(eq.substitute(mapping) for eq in self.equalities),
            name=self.name,
        )

    def with_extra_equalities(
        self, equalities: Iterable[EqualityAtom], name: str | None = None
    ) -> "ConjunctiveQuery":
        """Return a copy with additional equality atoms (used for element queries)."""
        return ConjunctiveQuery(
            head=self.head,
            atoms=self.atoms,
            equalities=self.equalities + tuple(equalities),
            name=name if name is not None else self.name,
        )

    def rename_apart(
        self, factory: FreshVariableFactory, keep: Iterable[Variable] = ()
    ) -> tuple["ConjunctiveQuery", dict[Term, Term]]:
        """Rename all variables not in ``keep`` to fresh ones.

        Returns the renamed query together with the substitution used, so the
        caller can relate old and new variables (e.g. to align a view's head
        with plan attributes).
        """
        keep_set = set(keep)
        mapping: dict[Term, Term] = {}
        for variable in sorted(self.variables, key=lambda v: v.name):
            if variable in keep_set:
                continue
            mapping[variable] = factory.fresh(variable.name)
        return self.substitute(mapping), mapping

    def project_head(self, positions: Sequence[int], name: str | None = None) -> "ConjunctiveQuery":
        """Return the query with its head restricted to ``positions``."""
        try:
            head = tuple(self.head[i] for i in positions)
        except IndexError as exc:
            raise QueryError(f"projection positions {positions} out of range") from exc
        return ConjunctiveQuery(
            head=head, atoms=self.atoms, equalities=self.equalities,
            name=name if name is not None else self.name,
        )

    def conjoin(self, other: "ConjunctiveQuery", name: str | None = None) -> "ConjunctiveQuery":
        """Conjoin two CQs, concatenating their heads.

        Shared variable names are *not* renamed apart: conjunction is by
        variable name, which matches the textbook semantics of writing the two
        bodies side by side.
        """
        return ConjunctiveQuery(
            head=self.head + other.head,
            atoms=self.atoms + other.atoms,
            equalities=self.equalities + other.equalities,
            name=name if name is not None else f"{self.name}_and_{other.name}",
        )

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        parts = [str(a) for a in self.atoms] + [str(e) for e in self.equalities]
        body = " ∧ ".join(parts) if parts else "true"
        return f"{self.name}({head}) :- {body}"


def cq(
    name: str,
    head: Sequence[object],
    atoms: Sequence[RelationAtom],
    equalities: Sequence[EqualityAtom] = (),
) -> ConjunctiveQuery:
    """Convenience constructor mirroring the paper's ``Q(x̄) = ...`` notation."""
    return ConjunctiveQuery(head=head, atoms=atoms, equalities=equalities, name=name)


def check_same_arity(queries: Sequence[ConjunctiveQuery]) -> int:
    """Return the common head arity of ``queries`` or raise :class:`QueryError`."""
    if not queries:
        raise QueryError("expected at least one conjunctive query")
    arity = queries[0].head_arity
    for query in queries[1:]:
        if query.head_arity != arity:
            raise QueryError(
                "queries in a union must share the same head arity: "
                f"{queries[0].name!r} has {arity}, {query.name!r} has {query.head_arity}"
            )
    return arity
