"""Atomic formulas: relation atoms and (in)equality atoms.

Following the paper (Section 2), atomic formulas are either relation atoms
``R(x1, ..., xk)`` whose terms are variables or constants, or equality atoms
``x = y`` / ``x = c``.  Inequality atoms are additionally supported because
the effective syntax of Section 5 allows conditions of the form ``x != y`` and
``x != c`` in selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import QueryError, SchemaError
from .schema import DatabaseSchema
from .terms import Constant, Term, Variable, as_term, is_variable


@dataclass(frozen=True)
class RelationAtom:
    """An atom ``R(t1, ..., tk)`` over relation ``relation``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[object]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(as_term(t) for t in terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Variables of the atom, in positional order with duplicates."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> tuple[Constant, ...]:
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise :class:`SchemaError` if the atom does not fit ``schema``."""
        relation = schema.relation(self.relation)
        if relation.arity != self.arity:
            raise SchemaError(
                f"atom {self} has arity {self.arity} but relation "
                f"{self.relation!r} has arity {relation.arity}"
            )

    def substitute(self, mapping: Mapping[Term, Term]) -> "RelationAtom":
        """Apply a term substitution to the atom."""
        return RelationAtom(self.relation, tuple(mapping.get(t, t) for t in self.terms))

    def term_at(self, position: int) -> Term:
        return self.terms[position]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class EqualityAtom:
    """An equality (or inequality) atom between two terms.

    ``negated=False`` encodes ``left = right``; ``negated=True`` encodes
    ``left != right``.  Equalities between two constants are allowed — they
    are either trivially true or make the query unsatisfiable — so that
    element-query construction (which adds equalities mechanically) never has
    to special-case them.
    """

    left: Term
    right: Term
    negated: bool = False

    def __init__(self, left: object, right: object, negated: bool = False) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))
        object.__setattr__(self, "negated", bool(negated))

    @property
    def is_equality(self) -> bool:
        return not self.negated

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(t for t in (self.left, self.right) if isinstance(t, Variable))

    def substitute(self, mapping: Mapping[Term, Term]) -> "EqualityAtom":
        return EqualityAtom(
            mapping.get(self.left, self.left),
            mapping.get(self.right, self.right),
            self.negated,
        )

    def holds_for(self, left_value: object, right_value: object) -> bool:
        """Evaluate the (in)equality on two concrete values."""
        if self.negated:
            return left_value != right_value
        return left_value == right_value

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.left} {op} {self.right}"


Atom = RelationAtom | EqualityAtom


def atoms_variables(atoms: Iterable[Atom]) -> Iterator[Variable]:
    """Yield all variables appearing in ``atoms`` (with repetitions)."""
    for atom in atoms:
        yield from atom.variables


def atoms_constants(atoms: Iterable[Atom]) -> Iterator[Constant]:
    """Yield all constants appearing in ``atoms`` (with repetitions)."""
    for atom in atoms:
        if isinstance(atom, RelationAtom):
            yield from atom.constants
        else:
            for term in (atom.left, atom.right):
                if isinstance(term, Constant):
                    yield term


def check_equality_terms(atom: EqualityAtom) -> None:
    """Reject inequality atoms between two constants with different values.

    Such atoms are legal in principle but almost always indicate a typo in a
    hand-written query; equality atoms between constants are kept because the
    element-query machinery generates them on purpose.
    """
    if atom.negated and not is_variable(atom.left) and not is_variable(atom.right):
        if atom.left == atom.right:
            raise QueryError(f"inequality atom {atom} is unsatisfiable")
