"""Query evaluation over fact sets.

This module provides the evaluation substrate used everywhere in the library:

* :func:`evaluate_cq` — conjunctive-query evaluation;
* :func:`evaluate_ucq` — union of the disjuncts' answers;
* :func:`evaluate_cq_yannakakis` — Yannakakis' algorithm for *acyclic* CQs
  (full reducer via semi-joins along a join tree, then join);
* :func:`evaluate_fo` — active-domain evaluation of full first-order queries
  (lives in :mod:`repro.algebra.fo`; exponential in quantifier rank, as
  expected for FO over the active domain).

Since the kernel refactor, the evaluators here are thin *compilers*: a query
is translated (:mod:`repro.exec.cq_compiler`) into a tree of iterator-based
physical operators (:mod:`repro.exec.operators`) — the same kernel the
bounded-plan executor runs on — and the tree is drained into the answer set.

A *fact set* is a mapping ``relation name -> collection of value tuples``;
:class:`repro.storage.instance.Database` exposes exactly this shape through
``.facts`` — but the evaluators also accept the :class:`Database` itself, in
which case joins probe the relations' cached secondary hash indexes and the
greedy join order consults the maintained cardinality/distinct statistics
instead of raw relation sizes.
"""

from __future__ import annotations

from typing import Collection, Iterable, Mapping, Sequence

from ..errors import EvaluationError, QueryError
from ..exec.cq_compiler import (
    FactsSource,
    atom_scan,
    cq_pipeline,
    head_projection,
)
from ..exec.operators import HashJoin, Operator, Project, Scan, SemiJoin
from .acyclicity import join_tree
from .cq import ConjunctiveQuery
from .terms import Constant, Term, Variable
from .ucq import UnionQuery

FactSet = Mapping[str, Collection[tuple]]
Binding = dict[Variable, object]

#: Inputs the evaluators accept: a fact mapping or a whole Database.
FactsLike = FactSet  # plus repro.storage.instance.Database (duck-typed)


# --------------------------------------------------------------------------- #
# Conjunctive query evaluation
# --------------------------------------------------------------------------- #


def _project_head(head: Sequence[Term], bindings: Iterable[Binding]) -> set[tuple]:
    """Project explicit bindings onto the head (the empty-body code path)."""
    answers: set[tuple] = set()
    for binding in bindings:
        row = []
        for term in head:
            if isinstance(term, Constant):
                row.append(term.value)
            else:
                if term not in binding:
                    raise EvaluationError(f"unsafe head variable {term} has no binding")
                row.append(binding[term])
        answers.add(tuple(row))
    return answers


def evaluate_cq(query: ConjunctiveQuery, facts: FactsLike) -> set[tuple]:
    """Evaluate a conjunctive query over a fact set (or a ``Database``).

    Returns the set of answer tuples (set semantics).  An unsatisfiable query
    yields the empty set; a query with an empty body yields its head tuple
    when the head is fully constant (the "constant query" of the paper) and
    raises otherwise.
    """
    if not query.is_satisfiable():
        return set()
    normalized = query.normalize()
    if not normalized.atoms:
        return _project_head(normalized.head, [{}])
    source = FactsSource(facts)
    operator, schema = cq_pipeline(normalized, source)
    return set(head_projection(operator, schema, normalized.head).rows())


def evaluate_ucq(query: UnionQuery | ConjunctiveQuery, facts: FactsLike) -> set[tuple]:
    """Evaluate a UCQ (or CQ) over a fact set (or a ``Database``)."""
    if isinstance(query, ConjunctiveQuery):
        return evaluate_cq(query, facts)
    answers: set[tuple] = set()
    for disjunct in query.disjuncts:
        answers |= evaluate_cq(disjunct, facts)
    return answers


# --------------------------------------------------------------------------- #
# Yannakakis' algorithm for acyclic CQs
# --------------------------------------------------------------------------- #


def _shared_positions(
    left: tuple[Variable, ...], right: tuple[Variable, ...]
) -> tuple[list[int], list[int]]:
    shared = [variable for variable in left if variable in right]
    return (
        [left.index(variable) for variable in shared],
        [right.index(variable) for variable in shared],
    )


def evaluate_cq_yannakakis(query: ConjunctiveQuery, facts: FactsLike) -> set[tuple]:
    """Evaluate an acyclic CQ with Yannakakis' semi-join programme.

    Each atom is materialised (projected onto its variables), parents are
    reduced by their children and children by their reduced parents with
    :class:`~repro.exec.operators.SemiJoin` along the join tree, and the
    fully reduced relations are hash-joined.  Raises :class:`QueryError`
    when the query is not acyclic.
    """
    if not query.is_satisfiable():
        return set()
    normalized = query.normalize()
    tree = join_tree(normalized)
    if tree is None:
        raise QueryError(f"query {query.name!r} is not acyclic")
    if not normalized.atoms:
        return _project_head(normalized.head, [{}])

    source = FactsSource(facts)
    schemas: dict[int, tuple[Variable, ...]] = {}
    relations: dict[int, list[tuple]] = {}
    for index, atom in enumerate(normalized.atoms):
        operator, schemas[index] = atom_scan(atom, source)
        relations[index] = list(operator.rows())

    def reduce(target: int, by: int) -> None:
        left_key, right_key = _shared_positions(schemas[target], schemas[by])
        relations[target] = list(
            SemiJoin(
                Scan(relations[target]), Scan(relations[by]), left_key, right_key
            ).rows()
        )

    # Upward pass: reduce each parent by its children (post-order).
    order = tree.post_order()
    for node in order:
        parent = tree.parent.get(node)
        if parent is not None:
            reduce(parent, node)
    # Downward pass: reduce children by their (already reduced) parents.
    for node in reversed(order):
        parent = tree.parent.get(node)
        if parent is not None:
            reduce(node, parent)

    # Final join over the fully reduced relations (now safe to join directly).
    current: Operator = Scan(relations[order[0]])
    schema = schemas[order[0]]
    for index in order[1:]:
        right_schema = schemas[index]
        left_key, right_key = _shared_positions(schema, right_schema)
        joined: Operator = HashJoin(current, Scan(relations[index]), left_key, right_key)
        fresh = [
            position
            for position, variable in enumerate(right_schema)
            if variable not in schema
        ]
        kept = tuple(range(len(schema))) + tuple(len(schema) + p for p in fresh)
        current = Project(joined, kept)
        schema = schema + tuple(right_schema[p] for p in fresh)
    return set(head_projection(current, schema, normalized.head).rows())


# --------------------------------------------------------------------------- #
# Active-domain FO evaluation (definition lives in fo.py to avoid a cycle)
# --------------------------------------------------------------------------- #


def active_domain(facts: FactSet, extra: Iterable[object] = ()) -> set[object]:
    """The set of all values occurring in the facts, plus ``extra`` values."""
    domain: set[object] = set(extra)
    for tuples in facts.values():
        for row in tuples:
            domain.update(row)
    return domain
