"""Query evaluation over fact sets.

This module provides the evaluation substrate used everywhere in the library:

* :func:`evaluate_cq` — hash-join style evaluation of a conjunctive query;
* :func:`evaluate_ucq` — union of the disjuncts' answers;
* :func:`evaluate_cq_yannakakis` — Yannakakis' algorithm for *acyclic* CQs
  (full reducer via semi-joins along a join tree, then join);
* :func:`evaluate_fo` — active-domain evaluation of full first-order queries
  (used by tests and by the FO examples; exponential in quantifier rank, as
  expected for FO over the active domain).

A *fact set* is a mapping ``relation name -> collection of value tuples``;
:class:`repro.storage.instance.Database` exposes exactly this shape.
"""

from __future__ import annotations

from typing import Collection, Iterable, Mapping, Sequence

from ..errors import EvaluationError, QueryError
from .atoms import EqualityAtom, RelationAtom
from .acyclicity import join_tree
from .cq import ConjunctiveQuery
from .terms import Constant, Term, Variable
from .ucq import UnionQuery

FactSet = Mapping[str, Collection[tuple]]
Binding = dict[Variable, object]


# --------------------------------------------------------------------------- #
# Conjunctive query evaluation
# --------------------------------------------------------------------------- #


def _atom_order(atoms: Sequence[RelationAtom], facts: FactSet) -> list[RelationAtom]:
    """Greedy join order: selective atoms first, then stay connected."""
    remaining = list(atoms)
    ordered: list[RelationAtom] = []
    bound: set[Variable] = set()

    def score(atom: RelationAtom) -> tuple:
        size = len(facts.get(atom.relation, ()))
        bound_count = sum(1 for t in atom.terms if isinstance(t, Constant) or t in bound)
        return (-bound_count, size)

    while remaining:
        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables)
    return ordered


def _build_index(
    facts: FactSet, relation: str, positions: tuple[int, ...]
) -> dict[tuple, list[tuple]]:
    """Index the tuples of ``relation`` by the values at ``positions``."""
    index: dict[tuple, list[tuple]] = {}
    for fact in facts.get(relation, ()):
        key = tuple(fact[p] for p in positions)
        index.setdefault(key, []).append(fact)
    return index


def _join_atom(
    bindings: list[Binding],
    atom: RelationAtom,
    facts: FactSet,
) -> list[Binding]:
    """Extend each binding with all matches of ``atom``."""
    if not bindings:
        return []
    # Positions whose term is a constant or a variable bound in *all* bindings
    # (bindings produced by previous atoms share the same variable set).
    sample = bindings[0]
    bound_positions: list[int] = []
    free_positions: list[int] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant) or term in sample:
            bound_positions.append(position)
        else:
            free_positions.append(position)
    index = _build_index(facts, atom.relation, tuple(bound_positions))

    result: list[Binding] = []
    for binding in bindings:
        key = []
        for position in bound_positions:
            term = atom.terms[position]
            key.append(term.value if isinstance(term, Constant) else binding[term])
        for fact in index.get(tuple(key), ()):
            if len(fact) != len(atom.terms):
                continue
            extended = dict(binding)
            ok = True
            for position in free_positions:
                term = atom.terms[position]
                value = fact[position]
                if term in extended and extended[term] != value:
                    ok = False
                    break
                extended[term] = value  # type: ignore[index]
            if ok:
                result.append(extended)
    return result


def _project_head(head: Sequence[Term], bindings: Iterable[Binding]) -> set[tuple]:
    answers: set[tuple] = set()
    for binding in bindings:
        row = []
        for term in head:
            if isinstance(term, Constant):
                row.append(term.value)
            else:
                if term not in binding:
                    raise EvaluationError(f"unsafe head variable {term} has no binding")
                row.append(binding[term])
        answers.add(tuple(row))
    return answers


def evaluate_cq(query: ConjunctiveQuery, facts: FactSet) -> set[tuple]:
    """Evaluate a conjunctive query over a fact set.

    Returns the set of answer tuples (set semantics).  An unsatisfiable query
    yields the empty set; a query with an empty body yields its head tuple
    when the head is fully constant (the "constant query" of the paper) and
    raises otherwise.
    """
    if not query.is_satisfiable():
        return set()
    normalized = query.normalize()
    bindings: list[Binding] = [{}]
    for atom in _atom_order(normalized.atoms, facts):
        bindings = _join_atom(bindings, atom, facts)
        if not bindings:
            return set()
    return _project_head(normalized.head, bindings)


def evaluate_ucq(query: UnionQuery | ConjunctiveQuery, facts: FactSet) -> set[tuple]:
    """Evaluate a UCQ (or CQ) over a fact set."""
    if isinstance(query, ConjunctiveQuery):
        return evaluate_cq(query, facts)
    answers: set[tuple] = set()
    for disjunct in query.disjuncts:
        answers |= evaluate_cq(disjunct, facts)
    return answers


# --------------------------------------------------------------------------- #
# Yannakakis' algorithm for acyclic CQs
# --------------------------------------------------------------------------- #


def _semi_join(
    left: set[tuple],
    left_vars: tuple[Variable, ...],
    right: set[tuple],
    right_vars: tuple[Variable, ...],
) -> set[tuple]:
    """Keep the left tuples that join with at least one right tuple."""
    shared = [v for v in left_vars if v in right_vars]
    if not shared:
        return left if right else set()
    left_positions = [left_vars.index(v) for v in shared]
    right_positions = [right_vars.index(v) for v in shared]
    right_keys = {tuple(t[p] for p in right_positions) for t in right}
    return {t for t in left if tuple(t[p] for p in left_positions) in right_keys}


def _atom_tuples(atom: RelationAtom, facts: FactSet) -> tuple[tuple[Variable, ...], set[tuple]]:
    """Materialise an atom as (variable schema, matching sub-tuples)."""
    variables: list[Variable] = []
    for term in atom.terms:
        if isinstance(term, Variable) and term not in variables:
            variables.append(term)
    matches: set[tuple] = set()
    for fact in facts.get(atom.relation, ()):
        if len(fact) != len(atom.terms):
            continue
        binding: Binding = {}
        ok = True
        for term, value in zip(atom.terms, fact):
            if isinstance(term, Constant):
                if term.value != value:
                    ok = False
                    break
            else:
                if term in binding and binding[term] != value:
                    ok = False
                    break
                binding[term] = value
        if ok:
            matches.add(tuple(binding[v] for v in variables))
    return tuple(variables), matches


def evaluate_cq_yannakakis(query: ConjunctiveQuery, facts: FactSet) -> set[tuple]:
    """Evaluate an acyclic CQ with Yannakakis' semi-join programme.

    Raises :class:`QueryError` when the query is not acyclic.
    """
    if not query.is_satisfiable():
        return set()
    normalized = query.normalize()
    tree = join_tree(normalized)
    if tree is None:
        raise QueryError(f"query {query.name!r} is not acyclic")
    if not normalized.atoms:
        return _project_head(normalized.head, [{}])

    schemas: dict[int, tuple[Variable, ...]] = {}
    relations: dict[int, set[tuple]] = {}
    for index, atom in enumerate(normalized.atoms):
        schemas[index], relations[index] = _atom_tuples(atom, facts)

    # Upward pass: reduce each parent by its children (post-order).
    order = tree.post_order()
    for node in order:
        parent = tree.parent.get(node)
        if parent is not None:
            relations[parent] = _semi_join(
                relations[parent], schemas[parent], relations[node], schemas[node]
            )
    # Downward pass: reduce children by their (already reduced) parents.
    for node in reversed(order):
        parent = tree.parent.get(node)
        if parent is not None:
            relations[node] = _semi_join(
                relations[node], schemas[node], relations[parent], schemas[parent]
            )

    # Final join over the fully reduced relations (now safe to join directly).
    bindings: list[Binding] = [{}]
    for index in order:
        variables, tuples = schemas[index], relations[index]
        new_bindings: list[Binding] = []
        for binding in bindings:
            for row in tuples:
                extended = dict(binding)
                ok = True
                for variable, value in zip(variables, row):
                    if variable in extended and extended[variable] != value:
                        ok = False
                        break
                    extended[variable] = value
                if ok:
                    new_bindings.append(extended)
        bindings = new_bindings
        if not bindings:
            return set()
    return _project_head(normalized.head, bindings)


# --------------------------------------------------------------------------- #
# Active-domain FO evaluation (definition lives in fo.py to avoid a cycle)
# --------------------------------------------------------------------------- #


def active_domain(facts: FactSet, extra: Iterable[object] = ()) -> set[object]:
    """The set of all values occurring in the facts, plus ``extra`` values."""
    domain: set[object] = set(extra)
    for tuples in facts.values():
        for row in tuples:
            domain.update(row)
    return domain
