"""Exception hierarchy for the bounded-rewriting library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses signal
schema problems, malformed queries, plan construction errors and resource
budgets being exceeded by the (worst-case exponential) decision procedures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A relation / attribute reference does not match the database schema."""


class QueryError(ReproError):
    """A query is malformed (arity mismatch, unsafe head variable, ...)."""


class PlanError(ReproError):
    """A query plan is malformed (attribute mismatch, unknown view, ...)."""


class PlanVerificationError(PlanError):
    """A plan failed static verification (:mod:`repro.analysis`).

    Raised by ``QueryService(verify_plans=True)`` when a planner emits a plan
    the :func:`repro.analysis.verify_plan` checker rejects.  ``diagnostics``
    carries the individual findings; ``query_name`` names the offending query
    when known.
    """

    def __init__(
        self,
        message: str,
        diagnostics: tuple = (),
        query_name: str | None = None,
    ) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
        self.query_name = query_name


class AccessConstraintError(ReproError):
    """An access constraint refers to unknown relations or attributes."""


class UnsupportedQueryError(ReproError):
    """The operation is not defined for this query language fragment.

    For instance, asking for the tableau of a query with negation, or the
    exact bounded-output test of a full FO query (undecidable; use the
    size-bounded effective syntax instead).
    """


class BudgetExceededError(ReproError):
    """An exponential decision procedure exceeded its configured budget.

    The bounded-rewriting and bounded-output problems are Sigma^p_3- and
    coNP-complete respectively, so exact procedures enumerate exponentially
    many candidates in the worst case.  Budgets keep them predictable; callers
    can raise the budget or switch to the heuristic/effective-syntax path.
    """


class DeltaCompilationError(UnsupportedQueryError):
    """A view definition could not be compiled into delta rules.

    Subclasses :class:`UnsupportedQueryError` so existing handlers of the
    maintenance compile path keep working; ``view_name`` (and, when relevant,
    ``relation``) identify the offending artifact.
    """

    def __init__(
        self,
        message: str,
        view_name: str | None = None,
        relation: str | None = None,
    ) -> None:
        super().__init__(message)
        self.view_name = view_name
        self.relation = relation


class EvaluationError(ReproError):
    """A query or plan could not be evaluated on the given database."""


class PlanStoreError(ReproError):
    """A persistent plan-store file is unreadable (truncated, garbage, ...).

    Raised by :class:`repro.engine.service.plan_store.PlanStore` when the
    on-disk payload cannot be decoded at all.  A *stale* store — wrong
    statistics fingerprint or planner-chain signature, or an unknown format
    version — is not an error: the service silently plans from scratch.
    """
