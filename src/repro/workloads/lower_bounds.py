"""Lower-bound gadget constructions from Theorem 4.1 and Theorem 3.11.

:mod:`repro.workloads.reductions` implements the Boolean gadgets shared by
all reductions plus the Theorem 3.4 / Proposition 4.5 constructions; this
module adds the remaining lower-bound families of the paper:

* Theorem 4.1(1) — *precoloring extension*: an ACQ ``Q`` over a single binary
  relation with one access constraint ``R(A -> B, 2)`` such that ``Q ≡_A ∅``
  iff the precoloring of the graph's leaves cannot be extended to a proper
  3-coloring (the construction of the electronic appendix, without the
  ``Qf`` padding sub-query, which only serves to rule out small plans);
* Theorem 4.1(2) — *3-colorability*: an ACQ over ``R(A, B)`` and ``R'(E, F)``
  with ``A = {R(A -> B, 1), R'(∅ -> (E, F), 6)}`` such that ``Q ≡_A ∅`` iff
  the graph is not 3-colorable;
* Theorem 4.1(3) — *3SAT*: an ACQ over ``R(A, B, C)`` and ``R'(E)`` with
  ``A = {R((A, B) -> C, 1), R'(∅ -> E, 2)}`` such that ``Q ≡_A ∅`` iff the
  formula is unsatisfiable.  The gate encoding differs from the appendix in
  one presentational aspect: Boolean connectives are realised through
  *tagged* rows of the ternary relation (``R('or0', b, a∨b)`` etc.) instead
  of the appendix's marker constants, which keeps the construction acyclic
  with per-clause variable copies tied to the originals through the
  functional constraint — the same mechanism, written more explicitly;
* Theorem 3.11 — the ``C^p_{2k+1}``-hardness family: a query ``Q_Θ`` and
  ``k`` fixed views such that ``Q_Θ`` has a 1-bounded rewriting using the
  views iff the number of satisfiable formulas among ``Θ = (f_0, ..., f_2k)``
  is even (the formulas must be *nested*: ``f_{i+1}`` satisfiable implies
  ``f_i`` satisfiable, mirroring ``L_0 ⊇ L_1 ⊇ ...``).

Every construction exposes the gadget pieces (schema, access schema, query,
views where applicable), the expected outcome derived from a brute-force
check of the source instance, and a *witness instance* builder realising the
positive direction of the proof, so tests and benchmarks can exercise both
the structural claims (acyclicity, fixed parameters) and the semantic ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..algebra.atoms import EqualityAtom, RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Constant, Term, Variable
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..errors import QueryError
from ..storage.instance import Database
from .reductions import Formula, encode_formula, figure2_facts, formula

COLORS = ("r", "g", "b")


# --------------------------------------------------------------------------- #
# Graphs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph over vertices ``0 .. num_vertices - 1``.

    Edges are stored as ordered pairs ``(i, j)`` with ``i < j``; the reduction
    treats the pair order as the edge's "first" and "second" endpoint (the
    paper encodes every undirected edge by two directed copies anyway).
    """

    num_vertices: int
    edges: tuple[tuple[int, int], ...]

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]]) -> None:
        normalized = []
        seen = set()
        for left, right in edges:
            if left == right:
                raise QueryError("self-loops are not allowed (they are never colorable)")
            if not (0 <= left < num_vertices and 0 <= right < num_vertices):
                raise QueryError(f"edge ({left}, {right}) out of range")
            pair = (min(left, right), max(left, right))
            if pair in seen:
                continue
            seen.add(pair)
            normalized.append(pair)
        object.__setattr__(self, "num_vertices", num_vertices)
        object.__setattr__(self, "edges", tuple(sorted(normalized)))

    @property
    def vertices(self) -> tuple[int, ...]:
        return tuple(range(self.num_vertices))

    def degree(self, vertex: int) -> int:
        return sum(1 for edge in self.edges if vertex in edge)

    def leaves(self) -> tuple[int, ...]:
        return tuple(v for v in self.vertices if self.degree(v) == 1)

    def colorings(self) -> Iterable[dict[int, str]]:
        """All assignments of the three colors to the vertices."""
        for assignment in itertools.product(COLORS, repeat=self.num_vertices):
            yield dict(enumerate(assignment))

    def is_proper(self, coloring: Mapping[int, str]) -> bool:
        return all(coloring[i] != coloring[j] for i, j in self.edges)

    def is_three_colorable(self) -> bool:
        return any(self.is_proper(coloring) for coloring in self.colorings())

    def precoloring_extendable(self, precoloring: Mapping[int, str]) -> bool:
        """Brute force: can the precoloring be extended to a proper coloring?"""
        return any(
            self.is_proper(coloring)
            for coloring in self.colorings()
            if all(coloring[v] == c for v, c in precoloring.items())
        )


def path_graph(length: int) -> Graph:
    """A path with ``length`` edges (``length + 1`` vertices)."""
    return Graph(length + 1, [(i, i + 1) for i in range(length)])


def cycle_graph(size: int) -> Graph:
    """A cycle on ``size`` vertices."""
    return Graph(size, [(i, (i + 1) % size) for i in range(size)])


def complete_graph(size: int) -> Graph:
    """The complete graph ``K_size`` (not 3-colorable for ``size >= 4``)."""
    return Graph(size, [(i, j) for i in range(size) for j in range(i + 1, size)])


# --------------------------------------------------------------------------- #
# Theorem 4.1, case (1): precoloring extension, A = {R(A -> B, 2)}
# --------------------------------------------------------------------------- #


@dataclass
class Theorem41Case1:
    """The precoloring-extension gadget: ``Q ≡_A ∅`` iff no proper extension exists."""

    graph: Graph
    precoloring: dict[int, str]
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery

    @property
    def expected_empty(self) -> bool:
        return not self.graph.precoloring_extendable(self.precoloring)

    def witness_instance(self, coloring: Mapping[int, str] | None = None) -> Database:
        """The instance of the proof's positive direction, built from a coloring.

        When no coloring is supplied, a proper extension of the precoloring is
        searched by brute force; :class:`QueryError` is raised if none exists.
        """
        if coloring is None:
            coloring = next(
                (
                    candidate
                    for candidate in self.graph.colorings()
                    if self.graph.is_proper(candidate)
                    and all(candidate[v] == c for v, c in self.precoloring.items())
                ),
                None,
            )
            if coloring is None:
                raise QueryError("the precoloring has no proper extension")
        database = Database(self.schema)
        for left, right in itertools.permutations(COLORS, 2):
            database.add("R", (left, right))
        n = self.graph.num_vertices
        for vertex in self.graph.vertices:
            index = vertex + 1
            database.add("R", (index, 1))
            database.add("R", (index + n, 2))
            database.add("R", (index + 2 * n, 3))
            database.add("R", (index, coloring[vertex]))
            database.add("R", (index + n, coloring[vertex]))
            database.add("R", (index + 2 * n, coloring[vertex]))
        return database


def _vertex_block_atoms(index: int, n: int, terms: Sequence[Term]) -> list[RelationAtom]:
    """The three (R(i, k) ∧ R(i, t1) ∧ R(i, t2) ...) blocks shared by Q1V/Q2V/QL.

    For each offset ``k ∈ {1, 2, 3}`` the block asserts ``R(i + (k-1)·n, k)``
    and ``R(i + (k-1)·n, t)`` for every term ``t`` — under ``R(A -> B, 2)``
    this forces all the terms to take the same value (see the proof).
    """
    atoms: list[RelationAtom] = []
    for offset, marker in ((0, 1), (n, 2), (2 * n, 3)):
        key = Constant(index + offset)
        atoms.append(RelationAtom("R", (key, Constant(marker))))
        for term in terms:
            atoms.append(RelationAtom("R", (key, term)))
    return atoms


def precoloring_reduction(
    graph: Graph, precoloring: Mapping[int, str]
) -> Theorem41Case1:
    """Build the Theorem 4.1(1) gadget for a graph and a leaf precoloring."""
    leaves = set(graph.leaves())
    for vertex, color in precoloring.items():
        if vertex not in leaves:
            raise QueryError(f"precoloring may only color leaves; {vertex} is not a leaf")
        if color not in COLORS:
            raise QueryError(f"unknown color {color!r}")
    schema = schema_from_spec({"R": ("a", "b")})
    access = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))

    n = graph.num_vertices
    vertex_vars = {v: Variable(f"v{v}") for v in graph.vertices}
    atoms: list[RelationAtom] = []

    # Q1: the six color tuples must be present.
    for left, right in itertools.permutations(COLORS, 2):
        atoms.append(RelationAtom("R", (Constant(left), Constant(right))))

    # QE: every edge, in both directions, through fresh per-edge copies.
    first_copy: dict[tuple[int, int], Variable] = {}
    second_copy: dict[tuple[int, int], Variable] = {}
    for edge in graph.edges:
        i, j = edge
        x1 = Variable(f"x1_{i}_{j}")
        x2 = Variable(f"x2_{i}_{j}")
        first_copy[edge] = x1
        second_copy[edge] = x2
        atoms.append(RelationAtom("R", (x1, x2)))
        atoms.append(RelationAtom("R", (x2, x1)))

    # Q1V / Q2V: tie the edge copies to their vertices through the constraint.
    for edge in graph.edges:
        i, j = edge
        atoms.extend(_vertex_block_atoms(i + 1, n, (vertex_vars[i], first_copy[edge])))
        atoms.extend(_vertex_block_atoms(j + 1, n, (vertex_vars[j], second_copy[edge])))

    # QL: the precolored leaves carry their colors.
    for vertex, color in sorted(precoloring.items()):
        atoms.extend(_vertex_block_atoms(vertex + 1, n, (vertex_vars[vertex], Constant(color))))

    query = ConjunctiveQuery(head=(), atoms=tuple(atoms), name="Q_precoloring")
    return Theorem41Case1(
        graph=graph,
        precoloring=dict(precoloring),
        schema=schema,
        access_schema=access,
        query=query,
    )


# --------------------------------------------------------------------------- #
# Theorem 4.1, case (2): 3-colorability, A = {R(A -> B, 1), R'(∅ -> (E, F), 6)}
# --------------------------------------------------------------------------- #


@dataclass
class Theorem41Case2:
    """The 3-colorability gadget: ``Q ≡_A ∅`` iff the graph is not 3-colorable."""

    graph: Graph
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery

    @property
    def expected_empty(self) -> bool:
        return not self.graph.is_three_colorable()

    def witness_instance(self, coloring: Mapping[int, str] | None = None) -> Database:
        if coloring is None:
            coloring = next(
                (c for c in self.graph.colorings() if self.graph.is_proper(c)), None
            )
            if coloring is None:
                raise QueryError("the graph is not 3-colorable")
        database = Database(self.schema)
        for left, right in itertools.permutations(COLORS, 2):
            database.add("Rp", (left, right))
        for vertex in self.graph.vertices:
            database.add("R", (vertex + 1, coloring[vertex]))
        return database


def three_colorability_reduction(graph: Graph) -> Theorem41Case2:
    """Build the Theorem 4.1(2) gadget for a graph."""
    schema = schema_from_spec({"R": ("a", "b"), "Rp": ("e", "f")})
    access = AccessSchema(
        (
            AccessConstraint("R", ("a",), ("b",), 1),
            AccessConstraint("Rp", (), ("e", "f"), 6),
        )
    )
    vertex_vars = {v: Variable(f"v{v}") for v in graph.vertices}
    atoms: list[RelationAtom] = []

    # Q1: the six color tuples of Rp.
    for left, right in itertools.permutations(COLORS, 2):
        atoms.append(RelationAtom("Rp", (Constant(left), Constant(right))))

    # QE over Rp with per-edge copies, QV over R identifying the copies via the FD.
    for edge in graph.edges:
        i, j = edge
        x1 = Variable(f"x1_{i}_{j}")
        x2 = Variable(f"x2_{i}_{j}")
        atoms.append(RelationAtom("Rp", (x1, x2)))
        atoms.append(RelationAtom("Rp", (x2, x1)))
        atoms.append(RelationAtom("R", (Constant(i + 1), x1)))
        atoms.append(RelationAtom("R", (Constant(j + 1), x2)))
    for vertex in graph.vertices:
        atoms.append(RelationAtom("R", (Constant(vertex + 1), vertex_vars[vertex])))

    query = ConjunctiveQuery(head=(), atoms=tuple(atoms), name="Q_3col")
    return Theorem41Case2(graph=graph, schema=schema, access_schema=access, query=query)


# --------------------------------------------------------------------------- #
# Theorem 4.1, case (3): 3SAT, A = {R((A, B) -> C, 1), R'(∅ -> E, 2)}
# --------------------------------------------------------------------------- #

# Tag constants of the ternary gate relation.  A row R(tag, b, out) computes
# the gate's output for second input b, where the tag itself encodes the gate
# and its first input (the tag rows R('tag_or', a, 'or<a>') perform the
# tagging, keyed on ('tag_or', a) so the FD makes the whole circuit
# functional).
TAG_OR, TAG_AND, TAG_NOT = "tag_or", "tag_and", "tag_not"


def _gate_truth_rows() -> list[tuple]:
    rows: list[tuple] = []
    for a in (0, 1):
        rows.append((TAG_OR, a, f"or{a}"))
        rows.append((TAG_AND, a, f"and{a}"))
        rows.append((TAG_NOT, a, 1 - a))
        for b in (0, 1):
            rows.append((f"or{a}", b, int(bool(a or b))))
            rows.append((f"and{a}", b, int(bool(a and b))))
    return rows


@dataclass
class Theorem41Case3:
    """The ACQ 3SAT gadget: ``Q ≡_A ∅`` iff the formula is unsatisfiable."""

    formula: Formula
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery

    @property
    def expected_empty(self) -> bool:
        return not self.formula.is_satisfiable()

    def witness_instance(self, assignment: Sequence[bool] | None = None) -> Database:
        if assignment is None:
            assignment = next(
                (
                    candidate
                    for candidate in itertools.product((False, True), repeat=self.formula.num_variables)
                    if self.formula.evaluate(candidate)
                ),
                None,
            )
            if assignment is None:
                raise QueryError("the formula is unsatisfiable")
        database = Database(self.schema)
        database.add("Rp", (0,))
        database.add("Rp", (1,))
        for row in _gate_truth_rows():
            database.add("R", row)
        for index, value in enumerate(assignment):
            database.add("R", (f"var{index}", "dot", int(value)))
        return database


class _GateBuilder:
    """Accumulates gate atoms of the Theorem 4.1(3) encoding."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.atoms: list[RelationAtom] = []
        self._counter = itertools.count()

    def fresh(self, hint: str) -> Variable:
        return Variable(f"{self.prefix}_{hint}{next(self._counter)}")

    def apply(self, tag: str, left: Term, right: Term) -> Variable:
        """Emit the two atoms computing ``gate(left, right)`` and return the output."""
        tagged = self.fresh("t")
        output = self.fresh("o")
        self.atoms.append(RelationAtom("R", (Constant(tag), left, tagged)))
        self.atoms.append(RelationAtom("R", (tagged, right, output)))
        return output

    def negate(self, operand: Term) -> Variable:
        output = self.fresh("n")
        self.atoms.append(RelationAtom("R", (Constant(TAG_NOT), operand, output)))
        return output


def acq_3sat_reduction(phi: Formula) -> Theorem41Case3:
    """Build the Theorem 4.1(3) gadget: an ACQ that is A-satisfiable iff ``phi`` is."""
    schema = schema_from_spec({"R": ("a", "b", "c"), "Rp": ("e",)})
    access = AccessSchema(
        (
            AccessConstraint("R", ("a", "b"), ("c",), 1),
            AccessConstraint("Rp", (), ("e",), 2),
        )
    )
    atoms: list[RelationAtom] = []
    equalities: list[EqualityAtom] = []

    # Anchor the gate truth table and the Boolean domain.
    for row in _gate_truth_rows():
        atoms.append(RelationAtom("R", tuple(Constant(v) for v in row)))
    atoms.append(RelationAtom("Rp", (Constant(0),)))
    atoms.append(RelationAtom("Rp", (Constant(1),)))

    # One master variable per propositional variable, constrained to {0, 1}.
    master = {i: Variable(f"x{i}") for i in range(phi.num_variables)}
    for index, variable in master.items():
        atoms.append(RelationAtom("Rp", (variable,)))
        atoms.append(RelationAtom("R", (Constant(f"var{index}"), Constant("dot"), variable)))

    clause_outputs: list[Term] = []
    for clause_index, clause in enumerate(phi.clauses):
        builder = _GateBuilder(prefix=f"c{clause_index}")
        literal_terms: list[Term] = []
        for literal_index, literal in enumerate(clause):
            # A per-clause copy of the variable, tied to the master through the
            # functional constraint (both atoms share the constant key).
            copy = Variable(f"x{literal.variable}_c{clause_index}_{literal_index}")
            builder.atoms.append(
                RelationAtom(
                    "R", (Constant(f"var{literal.variable}"), Constant("dot"), copy)
                )
            )
            literal_terms.append(builder.negate(copy) if literal.negated else copy)
        current = literal_terms[0]
        for term in literal_terms[1:]:
            current = builder.apply(TAG_OR, current, term)
        atoms.extend(builder.atoms)
        clause_outputs.append(current)

    conjunction_builder = _GateBuilder(prefix="and")
    overall: Term = clause_outputs[0] if clause_outputs else Constant(1)
    for term in clause_outputs[1:]:
        overall = conjunction_builder.apply(TAG_AND, overall, term)
    atoms.extend(conjunction_builder.atoms)
    if isinstance(overall, Variable):
        equalities.append(EqualityAtom(overall, Constant(1)))
    elif overall != Constant(1):  # pragma: no cover - defensive
        raise QueryError("constant formula output must be 1")

    query = ConjunctiveQuery(
        head=(), atoms=tuple(atoms), equalities=tuple(equalities), name="Q_acq3sat"
    )
    return Theorem41Case3(formula=phi, schema=schema, access_schema=access, query=query)


# --------------------------------------------------------------------------- #
# Theorem 3.11: the C^p_{2k+1} family
# --------------------------------------------------------------------------- #

RS = "Rs"


@dataclass
class Theorem311Instance:
    """The Theorem 3.11 gadget: fixed R, A, M = 1 and k fixed views.

    ``Q_Θ`` has a 1-bounded rewriting using the views iff the number of
    satisfiable formulas in ``formulas`` is even (counting from ``f_0``); the
    formulas must be *nested* — ``f_{i+1}`` satisfiable implies ``f_i``
    satisfiable — mirroring the language inclusions ``L_0 ⊇ L_1 ⊇ ...`` of
    the proof.
    """

    formulas: tuple[Formula, ...]
    k: int
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery
    views: ViewSet

    @property
    def satisfiable_count(self) -> int:
        return sum(1 for phi in self.formulas if phi.is_satisfiable())

    @property
    def expected_rewriting(self) -> bool:
        return self.satisfiable_count % 2 == 0

    def rs_rows(self) -> list[tuple]:
        """The ``(2k+1)(2k+2)/2`` rows of the relation ``Rs`` demanded by ``Qs``."""
        return _rs_rows(self.k)

    def canonical_database(self) -> Database:
        """The intended gadget instance: Figure 2 relations plus the ``Rs`` rows."""
        database = Database(self.schema)
        for relation, rows in figure2_facts().items():
            database.add_many(relation, rows)
        database.add_many(RS, self.rs_rows())
        return database


def _rs_rows(k: int) -> list[tuple]:
    """The prefix-flag rows of ``Rs``: one block per number of satisfiable formulas."""
    width = 2 * k + 1
    rows = []
    for filled in range(1, width + 1):
        flags = tuple(1 if position < filled else 0 for position in range(width))
        for index in range(filled):
            rows.append(flags + (index,))
    return rows


def nested_formula_family(satisfiable_count: int, k: int) -> tuple[Formula, ...]:
    """``2k + 1`` nested formulas with exactly ``satisfiable_count`` satisfiable ones.

    The first ``satisfiable_count`` formulas are trivially satisfiable
    (``x0``), the rest trivially unsatisfiable (``x0 ∧ ¬x0``), so the nesting
    condition holds by construction.
    """
    width = 2 * k + 1
    if not 0 <= satisfiable_count <= width:
        raise QueryError(f"satisfiable_count must lie in [0, {width}]")
    satisfiable = formula(1, [[(0, False)]])
    unsatisfiable = formula(1, [[(0, False)], [(0, True)]])
    return tuple(
        satisfiable if index < satisfiable_count else unsatisfiable
        for index in range(width)
    )


def theorem311_reduction(formulas: Sequence[Formula], k: int | None = None) -> Theorem311Instance:
    """Build the Theorem 3.11 gadget for ``2k + 1`` nested formulas."""
    formulas = tuple(formulas)
    if k is None:
        if len(formulas) % 2 == 0:
            raise QueryError("Theorem 3.11 needs an odd number of formulas (2k + 1)")
        k = (len(formulas) - 1) // 2
    if len(formulas) != 2 * k + 1:
        raise QueryError(f"expected {2 * k + 1} formulas, got {len(formulas)}")
    for earlier, later in zip(formulas, formulas[1:]):
        if later.is_satisfiable() and not earlier.is_satisfiable():
            raise QueryError(
                "formulas must be nested: a satisfiable formula may not follow an "
                "unsatisfiable one"
            )

    width = 2 * k + 1
    rs_attributes = tuple(f"V{i}" for i in range(width)) + ("U",)
    spec = {
        "R01": ("A",),
        "Ror": ("B", "A1", "A2"),
        "Rand": ("B", "A1", "A2"),
        "Rnot": ("A", "Abar"),
        RS: rs_attributes,
    }
    schema = schema_from_spec(spec)

    rs_row_count = len(_rs_rows(k))
    access = AccessSchema(
        (
            AccessConstraint("R01", (), ("A",), 2),
            AccessConstraint("Ror", (), ("B", "A1", "A2"), 4),
            AccessConstraint("Rand", (), ("B", "A1", "A2"), 4),
            AccessConstraint("Rnot", (), ("A", "Abar"), 2),
            AccessConstraint(RS, (), rs_attributes, rs_row_count),
        )
    )

    # Qc ∧ Qs: all Figure 2 tuples and all Rs rows must be present.
    anchor_atoms: list[RelationAtom] = []
    for relation, rows in figure2_facts().items():
        for row in sorted(rows):
            anchor_atoms.append(RelationAtom(relation, tuple(Constant(v) for v in row)))
    for row in _rs_rows(k):
        anchor_atoms.append(RelationAtom(RS, tuple(Constant(v) for v in row)))

    # Q3SAT: one encoding per formula over disjoint variables, output v_i.
    query_atoms: list[RelationAtom] = list(anchor_atoms)
    outputs: list[Term] = []
    for index, phi in enumerate(formulas):
        encoding = encode_formula(phi, prefix=f"f{index}")
        renaming: dict[Term, Term] = {
            variable: Variable(f"f{index}_{variable.name}") for variable in encoding.variables
        }
        for atom in encoding.atoms:
            query_atoms.append(atom.substitute(renaming))
        for variable in encoding.variables:
            query_atoms.append(RelationAtom("R01", (renaming[variable],)))
        output = encoding.output
        outputs.append(renaming.get(output, output))

    u = Variable("u")
    query_atoms.append(RelationAtom(RS, tuple(outputs) + (u,)))
    query = ConjunctiveQuery(head=(u,), atoms=tuple(query_atoms), name="Q_theta")

    # The k views V_i(u) = Rs(1^{2i}, 0^{...}, u) ∧ Qc ∧ Qs.
    views = []
    for i in range(1, k + 1):
        flags = tuple(1 if position < 2 * i else 0 for position in range(width))
        view_u = Variable("u")
        view_atoms = tuple(anchor_atoms) + (
            RelationAtom(RS, tuple(Constant(v) for v in flags) + (view_u,)),
        )
        views.append(
            View(
                f"V{i}",
                ConjunctiveQuery(head=(view_u,), atoms=view_atoms, name=f"V{i}_def"),
            )
        )

    return Theorem311Instance(
        formulas=formulas,
        k=k,
        schema=schema,
        access_schema=access,
        query=query,
        views=ViewSet(views),
    )
