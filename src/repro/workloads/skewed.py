"""A skewed social-feed workload where greedy join ordering goes wrong.

Schema:

* ``follows(celeb, fan)`` — who follows which celebrity;
* ``staff(team, agent)`` — support agents grouped into small teams;
* ``contacted(user, agent)`` — which users contacted which agents.

Access schema:

* ``follows(celeb -> fan, F)`` — a celebrity has at most ``F`` followers
  (large: the hot celebrity is popular);
* ``staff(team -> agent, S)`` — teams are small;
* ``contacted(user -> agent, Cu)`` — a user contacts few agents;
* ``contacted(agent -> user, Ca)`` — an agent serves a bounded book of users.

The benchmark query asks for (fan, agent) pairs where the fan follows the
hot celebrity and contacted an agent of one specific team.  Both directions
of ``contacted`` yield a conforming bounded plan, but their costs diverge by
orders of magnitude on skewed data: probing ``contacted[user -> agent]``
once per follower of the hot celebrity fetches every contact of thousands
of fans, while probing ``contacted[agent -> user]`` once per agent of the
one small team fetches a few hundred tuples.  The greedy builder orders
fetches by the *average* bucket size of each constraint and walks into the
expensive direction; the histogram-costed DP orderer (optimizer v2) sees
the hot key's skew through ``estimate_eq`` and picks the cheap one.  That
makes this the reference workload for the cost-based-vs-greedy benchmark
and the adaptive re-planning tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Constant, Variable
from ..algebra.views import ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..storage.generators import rng
from ..storage.instance import Database

HOT_CELEB = "c_hot"
HOT_TEAM = "t0"


def schema() -> DatabaseSchema:
    """The social-feed schema (follows / staff / contacted)."""
    return schema_from_spec(
        {
            "follows": ("celeb", "fan"),
            "staff": ("team", "agent"),
            "contacted": ("user", "agent"),
        }
    )


def access_schema(
    fan_bound: int = 4000,
    team_size: int = 10,
    contacts_per_user: int = 20,
    contacts_per_agent: int = 200,
) -> AccessSchema:
    """The four access constraints described in the module docstring."""
    return AccessSchema(
        (
            AccessConstraint("follows", ("celeb",), ("fan",), fan_bound),
            AccessConstraint("staff", ("team",), ("agent",), team_size),
            AccessConstraint("contacted", ("user",), ("agent",), contacts_per_user),
            AccessConstraint("contacted", ("agent",), ("user",), contacts_per_agent),
        )
    )


def views() -> ViewSet:
    """The workload runs without materialised views (pure fetch plans)."""
    return ViewSet(())


def query_feed(celeb: str = HOT_CELEB, team: str = HOT_TEAM) -> ConjunctiveQuery:
    """Q(fan, agent): fans of ``celeb`` who contacted an agent of ``team``."""
    fan, agent = Variable("fan"), Variable("agent")
    return ConjunctiveQuery(
        head=(fan, agent),
        atoms=(
            RelationAtom("follows", (Constant(celeb), fan)),
            RelationAtom("staff", (Constant(team), agent)),
            RelationAtom("contacted", (fan, agent)),
        ),
        name="Qfeed",
    )


@dataclass
class SkewedInstance:
    """A generated social-feed dataset together with its parameters."""

    database: Database
    hot_fans: int
    teams: int
    team_size: int
    users: int
    contacts_per_user: int

    @property
    def agents(self) -> int:
        return self.teams * self.team_size


def generate(
    hot_fans: int = 2000,
    cold_celebs: int = 50,
    cold_fans_each: int = 4,
    teams: int = 50,
    team_size: int = 5,
    users: int = 5000,
    contacts_per_user: int = 8,
    seed: int = 11,
) -> SkewedInstance:
    """Generate a skewed dataset satisfying the default access schema.

    One hot celebrity (:data:`HOT_CELEB`) has ``hot_fans`` followers —
    the histogram's hot-key singleton bucket — while ``cold_celebs`` others
    have a handful each, so the *average* follows bucket is tiny and the
    greedy builder's averaged estimates misprice the hot key.  Users
    ``fan0 .. fan{users-1}`` (a superset of the hot fans) each contact
    ``contacts_per_user`` agents chosen round-robin with jitter, keeping
    every ``contacted`` bucket within its bound in both directions.
    Answers to :func:`query_feed` exist by construction: hot fans whose
    contacts land on :data:`HOT_TEAM`'s agents.
    """
    generator = rng(seed)
    database = Database(schema())

    database.add_many(
        "follows", [(HOT_CELEB, f"fan{index}") for index in range(hot_fans)]
    )
    for celeb_index in range(cold_celebs):
        for fan_offset in range(cold_fans_each):
            fan_index = generator.randrange(users)
            database.add("follows", (f"c{celeb_index}", f"fan{fan_index}"))

    agents = teams * team_size
    database.add_many(
        "staff",
        [
            (f"t{agent_index // team_size}", f"agent{agent_index}")
            for agent_index in range(agents)
        ],
    )

    contacts = set()
    for user_index in range(users):
        for contact in range(contacts_per_user):
            # Round-robin base keeps agent books balanced (bounded in the
            # agent -> user direction); the jitter de-correlates users.
            agent_index = (user_index + contact * generator.randrange(1, 7)) % agents
            contacts.add((f"fan{user_index}", f"agent{agent_index}"))
    database.add_many("contacted", sorted(contacts))

    return SkewedInstance(
        database=database,
        hot_fans=hot_fans,
        teams=teams,
        team_size=team_size,
        users=users,
        contacts_per_user=contacts_per_user,
    )
