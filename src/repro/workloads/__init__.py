"""Workload generators: Example 1.1 graph search, synthetic CDR, random CQs, reduction gadgets."""

from . import cdr, example63, graph_search, lower_bounds, random_cq, reductions

__all__ = ["cdr", "example63", "graph_search", "lower_bounds", "random_cq", "reductions"]
