"""Workload generators: Example 1.1 graph search, synthetic CDR, random CQs, the skewed social feed, reduction gadgets."""

from . import cdr, example63, graph_search, lower_bounds, random_cq, reductions, skewed

__all__ = [
    "cdr",
    "example63",
    "graph_search",
    "lower_bounds",
    "random_cq",
    "reductions",
    "skewed",
]
