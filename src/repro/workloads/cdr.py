"""Synthetic CDR (call detail record) workload.

The journal version of the paper reports that, on CDR data and queries from
an industry collaborator, bounded query rewriting using views improves more
than 90% of the queries by 25x up to 5 orders of magnitude.  The proprietary
dataset is unavailable, so this module generates a synthetic CDR database
with the same *constraint structure*:

* ``customer(phone, name, plan, region)`` with ``phone`` a key;
* ``call(caller, callee, day, duration, cell)`` with per-day caps on the
  number of calls a phone makes / receives;
* ``cell(cell_id, region, city)`` with ``cell_id`` a key;
* ``plan(plan_id, plan_name, rate)`` with ``plan_id`` a key.

A mixed workload of conjunctive queries (some answerable through the indices
alone, some only with the help of cached views, some genuinely unbounded) and
a small set of views let the benchmarks reproduce the *shape* of the reported
distribution: which fraction of the workload becomes bounded, and how large
the access-ratio gap to a full scan grows with the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Constant, Variable
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..storage.generators import identifier, rng, zipf_index
from ..storage.instance import Database

REGIONS = ("north", "south", "east", "west", "centre")
PLANS = ("basic", "standard", "premium", "business")
MAX_CALLS_PER_DAY = 20
MAX_INCOMING_PER_DAY = 30


def schema() -> DatabaseSchema:
    return schema_from_spec(
        {
            "customer": ("phone", "name", "plan", "region"),
            "call": ("caller", "callee", "day", "duration", "cell"),
            "cell": ("cell_id", "region", "city"),
            "plan": ("plan_id", "plan_name", "rate"),
        }
    )


def access_schema() -> AccessSchema:
    """Access constraints of the CDR workload (keys and per-day call caps)."""
    return AccessSchema(
        (
            AccessConstraint("customer", ("phone",), ("name", "plan", "region"), 1),
            AccessConstraint("call", ("caller", "day"), ("callee",), MAX_CALLS_PER_DAY),
            AccessConstraint("call", ("caller", "day"), ("callee", "duration", "cell"), MAX_CALLS_PER_DAY),
            AccessConstraint("call", ("callee", "day"), ("caller",), MAX_INCOMING_PER_DAY),
            AccessConstraint("cell", ("cell_id",), ("region", "city"), 1),
            AccessConstraint("plan", ("plan_id",), ("plan_name", "rate"), 1),
        )
    )


def views() -> ViewSet:
    """Views selected for the workload (Armbrust-style precomputation).

    * ``V_premium(phone)`` — premium customers;
    * ``V_north(phone)`` — customers registered in the north region;
    * ``V_daily(caller, day)`` — caller/day pairs that made at least one call
      (a compact index-like view over the huge call relation).
    """
    phone, name, region, plan = (
        Variable("phone"),
        Variable("name"),
        Variable("region"),
        Variable("plan"),
    )
    v_premium = View(
        "V_premium",
        ConjunctiveQuery(
            head=(phone,),
            atoms=(RelationAtom("customer", (phone, name, Constant("premium"), region)),),
            name="V_premium_def",
        ),
    )
    v_north = View(
        "V_north",
        ConjunctiveQuery(
            head=(phone,),
            atoms=(RelationAtom("customer", (phone, name, plan, Constant("north"))),),
            name="V_north_def",
        ),
    )
    caller, callee, day, duration, cell = (
        Variable("caller"),
        Variable("callee"),
        Variable("day"),
        Variable("duration"),
        Variable("cell"),
    )
    v_daily = View(
        "V_daily",
        ConjunctiveQuery(
            head=(caller, day),
            atoms=(RelationAtom("call", (caller, callee, day, duration, cell)),),
            name="V_daily_def",
        ),
    )
    return ViewSet((v_premium, v_north, v_daily))


@dataclass
class CDRInstance:
    database: Database
    num_customers: int
    num_days: int
    phones: tuple[str, ...]
    days: tuple[int, ...]
    cells: tuple[str, ...]


def generate(
    num_customers: int = 500,
    num_days: int = 7,
    calls_per_customer_per_day: int = 4,
    num_cells: int = 50,
    seed: int = 11,
) -> CDRInstance:
    """Generate a CDR database satisfying the access schema."""
    generator = rng(seed)
    database = Database(schema())

    for index, plan_name in enumerate(PLANS):
        database.add("plan", (f"plan_{index}", plan_name, 10 + 5 * index))

    cells = []
    for index in range(num_cells):
        cell_id = identifier("cell", index, width=4)
        cells.append(cell_id)
        database.add("cell", (cell_id, REGIONS[index % len(REGIONS)], f"city_{index % 20}"))

    phones = []
    for index in range(num_customers):
        phone = identifier("ph", index)
        phones.append(phone)
        database.add(
            "customer",
            (
                phone,
                f"customer_{index}",
                PLANS[zipf_index(generator, len(PLANS), skew=1.0)],
                REGIONS[index % len(REGIONS)],
            ),
        )

    days = tuple(range(1, num_days + 1))
    incoming: dict[tuple[str, int], int] = {}
    for phone in phones:
        for day in days:
            calls_today = generator.randint(0, min(calls_per_customer_per_day, MAX_CALLS_PER_DAY))
            callees_today: set[str] = set()
            for _ in range(calls_today):
                callee = phones[zipf_index(generator, len(phones), skew=1.1)]
                if callee == phone or callee in callees_today:
                    continue
                if incoming.get((callee, day), 0) >= MAX_INCOMING_PER_DAY:
                    continue
                callees_today.add(callee)
                incoming[(callee, day)] = incoming.get((callee, day), 0) + 1
                database.add(
                    "call",
                    (
                        phone,
                        callee,
                        day,
                        generator.randint(10, 3600),
                        cells[zipf_index(generator, len(cells), skew=1.1)],
                    ),
                )
    return CDRInstance(
        database=database,
        num_customers=num_customers,
        num_days=num_days,
        phones=tuple(phones),
        days=days,
        cells=tuple(cells),
    )


def workload(instance: CDRInstance, count: int = 18, seed: int = 3) -> list[ConjunctiveQuery]:
    """A parametrised CQ workload in the spirit of the industrial queries.

    The queries mix three flavours: (a) index-anchored lookups (bounded even
    without views), (b) queries that become bounded only by exploiting a
    cached view as a filter/binder, and (c) analytical queries that remain
    unbounded (full scans).  Parameters (phones, days) are sampled from the
    instance so every query has a non-trivial chance of returning answers.
    """
    generator = rng(seed)
    queries: list[ConjunctiveQuery] = []
    phones = instance.phones
    days = instance.days

    def sample_phone() -> str:
        return phones[generator.randrange(len(phones))]

    def sample_day() -> int:
        return days[generator.randrange(len(days))]

    templates = []

    def q_calls_with_region(index: int) -> ConjunctiveQuery:
        """Callees and their cell regions for a given caller and day (bounded)."""
        callee, duration, cell, region, city = (
            Variable("callee"), Variable("duration"), Variable("cell"),
            Variable("region"), Variable("city"),
        )
        return ConjunctiveQuery(
            head=(callee, region),
            atoms=(
                RelationAtom(
                    "call",
                    (Constant(sample_phone()), callee, Constant(sample_day()), duration, cell),
                ),
                RelationAtom("cell", (cell, region, city)),
            ),
            name=f"cdr_q{index}_calls_region",
        )

    def q_callee_profile(index: int) -> ConjunctiveQuery:
        """Profiles of people called by a given phone on a given day (bounded)."""
        callee, duration, cell, name, plan, region = (
            Variable("callee"), Variable("duration"), Variable("cell"),
            Variable("name"), Variable("plan"), Variable("region"),
        )
        return ConjunctiveQuery(
            head=(callee, plan),
            atoms=(
                RelationAtom(
                    "call",
                    (Constant(sample_phone()), callee, Constant(sample_day()), duration, cell),
                ),
                RelationAtom("customer", (callee, name, plan, region)),
            ),
            name=f"cdr_q{index}_callee_profile",
        )

    def q_premium_callers(index: int) -> ConjunctiveQuery:
        """Premium customers who called a given phone on a given day (view-assisted)."""
        caller, name, region = Variable("caller"), Variable("name"), Variable("region")
        return ConjunctiveQuery(
            head=(caller,),
            atoms=(
                RelationAtom(
                    "call",
                    (caller, Constant(sample_phone()), Constant(sample_day()),
                     Variable("duration"), Variable("cell")),
                ),
                RelationAtom("customer", (caller, name, Constant("premium"), region)),
            ),
            name=f"cdr_q{index}_premium_callers",
        )

    def q_region_analysis(index: int) -> ConjunctiveQuery:
        """All calls between customers of two regions (unbounded analytics)."""
        caller, callee, day, duration, cell = (
            Variable("caller"), Variable("callee"), Variable("day"),
            Variable("duration"), Variable("cell"),
        )
        name1, plan1, name2, plan2 = (
            Variable("name1"), Variable("plan1"), Variable("name2"), Variable("plan2"),
        )
        region_a = REGIONS[index % len(REGIONS)]
        region_b = REGIONS[(index + 1) % len(REGIONS)]
        return ConjunctiveQuery(
            head=(caller, callee),
            atoms=(
                RelationAtom("call", (caller, callee, day, duration, cell)),
                RelationAtom("customer", (caller, name1, plan1, Constant(region_a))),
                RelationAtom("customer", (callee, name2, plan2, Constant(region_b))),
            ),
            name=f"cdr_q{index}_region_analysis",
        )

    templates = [q_calls_with_region, q_callee_profile, q_premium_callers, q_region_analysis]
    # Keep roughly the published proportions: ~85-90% of the workload is of the
    # bounded / view-assisted kind, the rest are whole-table analytics.
    weights = [6, 5, 5, 2]
    expanded: list = []
    for template, weight in zip(templates, weights):
        expanded.extend([template] * weight)
    for index in range(count):
        template = expanded[index % len(expanded)]
        queries.append(template(index))
    return queries
