"""Random conjunctive-query generation over an arbitrary schema.

The paper's motivation cites experiments where, under a couple of hundred
access constraints, roughly 77% of randomly generated conjunctive queries are
boundedly evaluable, and bounded plans beat full scans by orders of
magnitude.  This generator produces the random CQ workloads used by the
corresponding benchmarks: queries are built by picking relation atoms,
sharing join variables with a configurable probability and grounding some
attributes with constants drawn from the data (so that a realistic fraction
of queries can be anchored by the access-constraint indices).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Term, Variable
from ..storage.generators import rng
from ..storage.instance import Database


@dataclass
class RandomCQConfig:
    """Knobs of the random CQ generator."""

    min_atoms: int = 2
    max_atoms: int = 4
    constant_probability: float = 0.3
    join_probability: float = 0.6
    head_size: int = 2
    seed: int = 42


def _constant_pool(database: Database, per_relation: int, generator: random.Random) -> dict[str, list[tuple]]:
    pool: dict[str, list[tuple]] = {}
    for name, relation in database.facts.items():
        rows = list(relation)
        generator.shuffle(rows)
        pool[name] = rows[:per_relation]
    return pool


def random_cq(
    schema: DatabaseSchema,
    database: Database,
    config: RandomCQConfig,
    generator: random.Random,
    name: str = "Qr",
) -> ConjunctiveQuery:
    """Generate one random CQ whose constants come from the database."""
    pool = _constant_pool(database, per_relation=20, generator=generator)
    relations = [r for r in schema.names if len(database.relation(r)) > 0]
    if not relations:
        relations = list(schema.names)
    num_atoms = generator.randint(config.min_atoms, config.max_atoms)
    atoms: list[RelationAtom] = []
    variables: list[Variable] = []
    counter = 0
    for _ in range(num_atoms):
        relation_name = generator.choice(relations)
        relation = schema.relation(relation_name)
        sample_rows = pool.get(relation_name, [])
        sample = generator.choice(sample_rows) if sample_rows else None
        terms: list[Term] = []
        for position, attribute in enumerate(relation.attributes):
            roll = generator.random()
            if sample is not None and roll < config.constant_probability:
                terms.append(Constant(sample[position]))
            elif variables and roll < config.constant_probability + config.join_probability:
                terms.append(generator.choice(variables))
            else:
                variable = Variable(f"v{counter}")
                counter += 1
                variables.append(variable)
                terms.append(variable)
        atoms.append(RelationAtom(relation_name, terms))
    head_candidates = list(dict.fromkeys(variables))
    generator.shuffle(head_candidates)
    head = tuple(head_candidates[: config.head_size])
    if not head and head_candidates:
        head = (head_candidates[0],)
    return ConjunctiveQuery(head=head, atoms=tuple(atoms), name=name)


def random_workload(
    schema: DatabaseSchema,
    database: Database,
    count: int,
    config: RandomCQConfig | None = None,
) -> list[ConjunctiveQuery]:
    """Generate ``count`` random CQs (deterministic for a given config seed)."""
    config = config or RandomCQConfig()
    generator = rng(config.seed)
    return [
        random_cq(schema, database, config, generator, name=f"Qr{i}") for i in range(count)
    ]
