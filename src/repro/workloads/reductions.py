"""Reduction gadgets from the paper's lower-bound proofs.

The hardness results of the paper are established through reductions built
from a small family of Boolean gadgets (Figure 2).  This module implements

* the Figure 2 relations (truth tables for ∨, ∧, ¬ and the Boolean domain);
* CQ encodings of propositional formulas over those gadgets;
* the 3SAT -> BOP reduction of Theorem 3.4 (``Q(w)`` has bounded output iff
  the formula is unsatisfiable);
* the 3SAT -> VBRP reduction of Proposition 4.5 for FD-only access schemas
  (``Q`` has a 1-bounded rewriting using ``V = {Qc}`` iff the formula is
  satisfiable).

The gadgets double as correctness tests (the decision procedures must agree
with a brute-force satisfiability check on small formulas) and as benchmark
families exhibiting the exponential behaviour that the coNP/NP lower bounds
predict.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Constant, Term, Variable
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..errors import QueryError
from ..storage.instance import Database


# --------------------------------------------------------------------------- #
# Propositional formulas
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Literal:
    """A literal: variable index (0-based) and a negation flag."""

    variable: int
    negated: bool = False


@dataclass(frozen=True)
class Formula:
    """A CNF formula with at most 3 literals per clause."""

    num_variables: int
    clauses: tuple[tuple[Literal, ...], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not 1 <= len(clause) <= 3:
                raise QueryError("clauses must have between 1 and 3 literals")
            for literal in clause:
                if not 0 <= literal.variable < self.num_variables:
                    raise QueryError(f"literal {literal} out of range")

    def is_satisfiable(self) -> bool:
        """Brute-force satisfiability (used to validate the reductions)."""
        for assignment in itertools.product((False, True), repeat=self.num_variables):
            if self.evaluate(assignment):
                return True
        return False

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        return all(
            any(assignment[lit.variable] != lit.negated for lit in clause)
            for clause in self.clauses
        )


def formula(num_variables: int, clauses: Iterable[Iterable[tuple[int, bool]]]) -> Formula:
    """Convenience constructor: clauses as ``[(variable, negated), ...]`` lists."""
    return Formula(
        num_variables=num_variables,
        clauses=tuple(
            tuple(Literal(variable, negated) for variable, negated in clause)
            for clause in clauses
        ),
    )


# --------------------------------------------------------------------------- #
# Figure 2: Boolean gadget relations
# --------------------------------------------------------------------------- #

R01, R_OR, R_AND, R_NOT, R_O = "R01", "Ror", "Rand", "Rnot", "Ro"


def gadget_schema(include_output_relation: bool = True) -> DatabaseSchema:
    """The relations of Figure 2 plus the output-bounding relation ``Ro``."""
    spec = {
        R01: ("A",),
        R_OR: ("B", "A1", "A2"),
        R_AND: ("B", "A1", "A2"),
        R_NOT: ("A", "Abar"),
    }
    if include_output_relation:
        spec[R_O] = ("I", "X")
    return schema_from_spec(spec)


def figure2_facts() -> dict[str, set[tuple]]:
    """The intended instances I01, I∨, I∧, I¬ of Figure 2."""
    return {
        R01: {(0,), (1,)},
        R_OR: {(0, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1)},
        R_AND: {(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 1, 1)},
        R_NOT: {(0, 1), (1, 0)},
    }


def figure2_database(extra_output_tuples: Iterable[tuple] = ()) -> Database:
    """A database holding exactly the Figure 2 instances (plus optional Ro tuples)."""
    database = Database(gadget_schema())
    for relation, rows in figure2_facts().items():
        database.add_many(relation, rows)
    database.add_many(R_O, extra_output_tuples)
    return database


def qc_atoms() -> tuple[RelationAtom, ...]:
    """The atoms of ``Qc``: they force all Figure 2 tuples to be present."""
    atoms: list[RelationAtom] = []
    for relation, rows in figure2_facts().items():
        for row in sorted(rows):
            atoms.append(RelationAtom(relation, tuple(Constant(v) for v in row)))
    return tuple(atoms)


def gadget_access_constraints() -> tuple[AccessConstraint, ...]:
    """Cardinality constraints pinning the gadget relations to Figure 2 sizes."""
    return (
        AccessConstraint(R01, (), ("A",), 2),
        AccessConstraint(R_OR, (), ("B", "A1", "A2"), 4),
        AccessConstraint(R_AND, (), ("B", "A1", "A2"), 4),
        AccessConstraint(R_NOT, (), ("A", "Abar"), 2),
    )


# --------------------------------------------------------------------------- #
# CQ encoding of a formula over the gadgets
# --------------------------------------------------------------------------- #


@dataclass
class FormulaEncoding:
    """CQ atoms computing the truth value of a formula.

    ``output`` is the term holding the formula's value under the assignment
    encoded by ``variables``; ``atoms`` are the gate atoms.  Identical
    literals within a clause are deduplicated, keeping the number of auxiliary
    variables small (important for the element-query based procedures, whose
    cost is exponential in the number of variables).
    """

    variables: tuple[Variable, ...]
    atoms: tuple[RelationAtom, ...]
    output: Term


def encode_formula(phi: Formula, prefix: str = "g") -> FormulaEncoding:
    """Encode ``phi`` as gate atoms over the Figure 2 relations."""
    variables = tuple(Variable(f"x{i}") for i in range(phi.num_variables))
    atoms: list[RelationAtom] = []
    negation_of: dict[int, Variable] = {}
    counter = itertools.count()

    def literal_term(literal: Literal) -> Term:
        if not literal.negated:
            return variables[literal.variable]
        if literal.variable not in negation_of:
            negated = Variable(f"{prefix}_n{literal.variable}")
            negation_of[literal.variable] = negated
            atoms.append(RelationAtom(R_NOT, (variables[literal.variable], negated)))
        return negation_of[literal.variable]

    clause_outputs: list[Term] = []
    for clause in phi.clauses:
        distinct: list[Term] = []
        for literal in clause:
            term = literal_term(literal)
            if term not in distinct:
                distinct.append(term)
        current = distinct[0]
        for other in distinct[1:]:
            gate = Variable(f"{prefix}_or{next(counter)}")
            atoms.append(RelationAtom(R_OR, (gate, current, other)))
            current = gate
        clause_outputs.append(current)

    if not clause_outputs:
        output: Term = Constant(1)
    else:
        output = clause_outputs[0]
        for other in clause_outputs[1:]:
            gate = Variable(f"{prefix}_and{next(counter)}")
            atoms.append(RelationAtom(R_AND, (gate, output, other)))
            output = gate
    return FormulaEncoding(variables=variables, atoms=tuple(atoms), output=output)


# --------------------------------------------------------------------------- #
# Theorem 3.4: 3SAT -> bounded output problem
# --------------------------------------------------------------------------- #


@dataclass
class BOPReduction:
    """Instance of the BOP reduction: bounded output iff the formula is unsatisfiable."""

    formula: Formula
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery

    @property
    def expected_bounded(self) -> bool:
        return not self.formula.is_satisfiable()


def bop_reduction(phi: Formula) -> BOPReduction:
    """Build the Theorem 3.4 gadget query ``Q(w)`` for a 3SAT formula."""
    encoding = encode_formula(phi)
    w, k = Variable("w"), Variable("k")
    atoms = list(qc_atoms())
    atoms.extend(RelationAtom(R01, (x,)) for x in encoding.variables)
    atoms.extend(encoding.atoms)
    atoms.append(RelationAtom(R01, (encoding.output,)))
    atoms.append(RelationAtom(R_O, (k, Constant(1))))
    atoms.append(RelationAtom(R_O, (k, encoding.output)))
    atoms.append(RelationAtom(R_O, (k, w)))
    query = ConjunctiveQuery(head=(w,), atoms=tuple(atoms), name="Q_bop")
    access = AccessSchema(
        gadget_access_constraints() + (AccessConstraint(R_O, ("I",), ("X",), 2),)
    )
    return BOPReduction(
        formula=phi, schema=gadget_schema(), access_schema=access, query=query
    )


# --------------------------------------------------------------------------- #
# Proposition 4.5: 3SAT -> VBRP(CQ) with FD-only access constraints
# --------------------------------------------------------------------------- #


@dataclass
class Prop45Reduction:
    """Instance of the Proposition 4.5 reduction.

    ``query`` has a 1-bounded rewriting in CQ using ``views`` under the
    FD-only ``access_schema`` iff the formula is satisfiable.
    """

    formula: Formula
    schema: DatabaseSchema
    access_schema: AccessSchema
    query: ConjunctiveQuery
    views: ViewSet
    max_size: int = 1

    @property
    def expected_rewriting(self) -> bool:
        return self.formula.is_satisfiable()


def _qc_atoms_without_r01() -> tuple[RelationAtom, ...]:
    """The Qc atoms of Proposition 4.5 (the R01 relation is not available)."""
    return tuple(atom for atom in qc_atoms() if atom.relation != R01)


def prop45_reduction(phi: Formula) -> Prop45Reduction:
    """Build the Proposition 4.5 gadget: FD-only constraints, a single view Qc."""
    schema = schema_from_spec(
        {
            R_OR: ("B", "A1", "A2"),
            R_AND: ("B", "A1", "A2"),
            R_NOT: ("A", "Abar"),
        }
    )
    access = AccessSchema(
        (
            AccessConstraint(R_OR, ("A1", "A2"), ("B",), 1),
            AccessConstraint(R_AND, ("A1", "A2"), ("B",), 1),
            AccessConstraint(R_NOT, ("A",), ("Abar",), 1),
        )
    )
    encoding = encode_formula(phi)
    base_atoms = _qc_atoms_without_r01()
    # Force every assignment variable through R¬ so its Boolean-ness follows
    # from the gadget tuples (the proof extracts the domain from R¬).
    domain_atoms = []
    negation_seen = {a.terms[0] for a in encoding.atoms if a.relation == R_NOT}
    for variable in encoding.variables:
        if variable not in negation_seen:
            domain_atoms.append(
                RelationAtom(R_NOT, (variable, Variable(f"dom_{variable.name}")))
            )
    query_atoms = base_atoms + tuple(domain_atoms) + encoding.atoms
    equalities = ()
    if isinstance(encoding.output, Variable):
        from ..algebra.atoms import EqualityAtom

        equalities = (EqualityAtom(encoding.output, Constant(1)),)
    query = ConjunctiveQuery(
        head=(), atoms=query_atoms, equalities=equalities, name="Q_prop45"
    )
    view = View("Vqc", ConjunctiveQuery(head=(), atoms=base_atoms, name="Qc"))
    return Prop45Reduction(
        formula=phi,
        schema=schema,
        access_schema=access,
        query=query,
        views=ViewSet((view,)),
    )


# --------------------------------------------------------------------------- #
# Small formula families for tests and benchmarks
# --------------------------------------------------------------------------- #


def satisfiable_example() -> Formula:
    """(x0 ∨ ¬x1) ∧ (x1) — satisfiable."""
    return formula(2, [[(0, False), (1, True)], [(1, False)]])


def unsatisfiable_example() -> Formula:
    """(x0) ∧ (¬x0) — unsatisfiable."""
    return formula(1, [[(0, False)], [(0, True)]])


def random_formula(num_variables: int, num_clauses: int, seed: int = 0) -> Formula:
    """A random 3CNF formula (deterministic for a given seed)."""
    import random

    generator = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        clause = []
        for _ in range(3):
            clause.append((generator.randrange(num_variables), generator.random() < 0.5))
        clauses.append(clause)
    return formula(num_variables, clauses)
