"""The Graph Search workload of Example 1.1 (movies liked by NASA folks).

Schema ``R0``:

* ``person(pid, name, affiliation)``
* ``movie(mid, mname, studio, release)``
* ``rating(mid, rank)``
* ``like(pid, id, type)``

Access schema ``A0``:

* ``φ1 = movie((studio, release) -> mid, N0)`` — each studio releases at most
  ``N0`` movies per year (``N0 ≈ 100`` in practice);
* ``φ2 = rating(mid -> rank, 1)`` — each movie has a unique rating;

optionally extended (``A1``) with ``φ3 = like((pid, id) -> type, 1)``.

Query ``Q0``: movies released by Universal Studios in 2014, liked by people
at NASA and rated 5.  ``Q0`` is *not* boundedly evaluable under ``A0`` (the
person/like relations are unbounded), but with the view ``V1`` (movies liked
by NASA folks) it has an 11-bounded rewriting whose plan ``ξ0`` (Figure 1)
fetches at most ``2·N0`` tuples however large the database grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Constant, Variable
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    ViewScan,
)
from ..storage.generators import identifier, rng, zipf_index
from ..storage.instance import Database

STUDIOS = ("Universal", "Paramount", "Warner", "Sony", "Disney", "MGM", "Lionsgate")
YEARS = tuple(str(year) for year in range(2005, 2016))
AFFILIATIONS = ("NASA", "ESA", "MIT", "CERN", "EPFL", "Edinburgh", "Beihang")


def schema() -> DatabaseSchema:
    """The database schema R0 of Example 1.1."""
    return schema_from_spec(
        {
            "person": ("pid", "name", "affiliation"),
            "movie": ("mid", "mname", "studio", "release"),
            "rating": ("mid", "rank"),
            "like": ("pid", "id", "type"),
        }
    )


def access_schema(n0: int = 100, with_like_key: bool = False) -> AccessSchema:
    """The access schema A0 (or A1 when ``with_like_key``) of Examples 1.1/3.3."""
    constraints = [
        AccessConstraint("movie", ("studio", "release"), ("mid",), n0),
        AccessConstraint("rating", ("mid",), ("rank",), 1),
    ]
    if with_like_key:
        constraints.append(AccessConstraint("like", ("pid", "id"), ("type",), 1))
    return AccessSchema(constraints)


def query_q0() -> ConjunctiveQuery:
    """Q0(mid): Universal movies from 2014, liked by NASA people, rated 5."""
    mid, xp, xp_name, ym = (
        Variable("mid"),
        Variable("xp"),
        Variable("xp_name"),
        Variable("ym"),
    )
    return ConjunctiveQuery(
        head=(mid,),
        atoms=(
            RelationAtom("person", (xp, xp_name, Constant("NASA"))),
            RelationAtom("movie", (mid, ym, Constant("Universal"), Constant("2014"))),
            RelationAtom("like", (xp, mid, Constant("movie"))),
            RelationAtom("rating", (mid, Constant(5))),
        ),
        name="Q0",
    )


def view_v1() -> View:
    """V1(mid): movies liked by people at NASA (Example 1.1)."""
    mid, xp, xp_name, ym, z1, z2 = (
        Variable("mid"),
        Variable("xp"),
        Variable("xp_name"),
        Variable("ym"),
        Variable("z1"),
        Variable("z2"),
    )
    definition = ConjunctiveQuery(
        head=(mid,),
        atoms=(
            RelationAtom("person", (xp, xp_name, Constant("NASA"))),
            RelationAtom("movie", (mid, ym, z1, z2)),
            RelationAtom("like", (xp, mid, Constant("movie"))),
        ),
        name="V1_def",
    )
    return View("V1", definition)


def view_v2() -> View:
    """V2(pid): people who work at NASA (Example 3.3)."""
    pid, name = Variable("pid"), Variable("name")
    definition = ConjunctiveQuery(
        head=(pid,),
        atoms=(RelationAtom("person", (pid, name, Constant("NASA"))),),
        name="V2_def",
    )
    return View("V2", definition)


def views() -> ViewSet:
    return ViewSet((view_v1(), view_v2()))


def figure1_plan() -> PlanNode:
    """The bounded plan ξ0 of Figure 1 (modulo explicit renaming nodes).

    Fetches Universal/2014 movies through φ1, filters them against the cached
    view V1, fetches their ratings through φ2, keeps rank 5 and projects the
    movie identifiers.
    """
    studio = ConstantScan("Universal", attribute="studio")
    release = ConstantScan("2014", attribute="release")
    keys = ProductNode(studio, release)
    movies = FetchNode(keys, "movie", ("studio", "release"), ("mid",))
    movie_ids = ProjectNode(movies, ("mid",))

    liked = RenameNode(ViewScan("V1", ("mid",)), {"mid": "mid_v"})
    pairs = ProductNode(movie_ids, liked)
    matched = SelectNode(pairs, (AttributeEqualsAttribute("mid", "mid_v"),))
    candidates = ProjectNode(matched, ("mid",))

    ratings = FetchNode(candidates, "rating", ("mid",), ("rank",))
    rated_five = SelectNode(ratings, (AttributeEqualsConstant("rank", 5),))
    return ProjectNode(rated_five, ("mid",))


@dataclass
class GraphSearchInstance:
    """A generated Graph Search dataset together with its parameters."""

    database: Database
    n0: int
    num_persons: int
    num_movies: int
    nasa_fraction: float


def generate(
    num_persons: int = 1000,
    num_movies: int = 500,
    likes_per_person: int = 5,
    n0: int = 100,
    nasa_fraction: float = 0.02,
    planted_answers: int = 3,
    seed: int = 7,
) -> GraphSearchInstance:
    """Generate a dataset satisfying A0 (and A1) with the requested scale.

    The movie relation is generated so that no (studio, release) pair exceeds
    ``n0`` movies; each movie gets exactly one rating; likes are skewed
    towards popular movies, as in real social data.  ``planted_answers``
    guarantees that Q0 has at least that many answers (Universal/2014 movies
    rated 5 and liked by a NASA person), so the workload is never vacuous.
    """
    generator = rng(seed)
    database = Database(schema())

    persons = []
    for index in range(num_persons):
        pid = identifier("p", index)
        affiliation = (
            "NASA" if generator.random() < nasa_fraction else generator.choice(AFFILIATIONS[1:])
        )
        persons.append(pid)
        database.add("person", (pid, f"name_{index}", affiliation))

    movies = []
    group_counts: dict[tuple[str, str], int] = {}
    for index in range(num_movies):
        mid = identifier("m", index)
        # Pick a (studio, release) group that still has room under N0.
        for _ in range(20):
            studio = generator.choice(STUDIOS)
            release = generator.choice(YEARS)
            if group_counts.get((studio, release), 0) < n0:
                break
        group_counts[(studio, release)] = group_counts.get((studio, release), 0) + 1
        movies.append(mid)
        database.add("movie", (mid, f"title_{index}", studio, release))
        database.add("rating", (mid, generator.randint(1, 5)))

    for pid in persons:
        liked = set()
        for _ in range(likes_per_person):
            movie_index = zipf_index(generator, len(movies), skew=1.2)
            liked.add(movies[movie_index])
        for mid in liked:
            database.add("like", (pid, mid, "movie"))

    # Plant guaranteed answers for Q0: Universal/2014 movies rated 5, liked by
    # a NASA person.  The planted movies stay within the N0 group bound.
    if planted_answers > 0:
        nasa_pid = identifier("p", num_persons)
        database.add("person", (nasa_pid, "planted_nasa", "NASA"))
        for index in range(planted_answers):
            if group_counts.get(("Universal", "2014"), 0) >= n0:
                break
            mid = identifier("m", num_movies + index)
            group_counts[("Universal", "2014")] = (
                group_counts.get(("Universal", "2014"), 0) + 1
            )
            database.add("movie", (mid, f"planted_title_{index}", "Universal", "2014"))
            database.add("rating", (mid, 5))
            database.add("like", (nasa_pid, mid, "movie"))

    return GraphSearchInstance(
        database=database,
        n0=n0,
        num_persons=num_persons,
        num_movies=num_movies,
        nasa_fraction=nasa_fraction,
    )
