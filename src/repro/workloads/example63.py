"""Example 6.3 of the paper: FO beats UCQ as a rewriting language.

The example exhibits a Boolean CQ ``Q`` over six relations, three Boolean
views ``V1, V2, V3`` and an access schema ``A`` such that, with ``M = 5``,

* ``Q`` has a 5-bounded rewriting in FO — the plan ``(V3 \\ V1) ∪ V2``; and
* ``Q`` has no 5-bounded rewriting in UCQ.

The key semantic facts are ``Q ⋢_A V1``, ``V1 ⋢_A Q``, ``V2 ≡_A V1 ∧ Q`` and
``V3 ≡_A V1 ∪ Q``; they follow from the interplay between the constraint
``T(X -> Y, 3)`` and the four key constraints on ``K1 .. K4``, which force,
in any valuation of ``Q'``, either ``x1 = x3`` or ``x2 = x4``.

This module builds the schema, the access schema, ``Q``, the views and the
5-node FO plan so that tests and benchmarks can exercise the construction.
"""

from __future__ import annotations

from ..algebra.atoms import RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema, schema_from_spec
from ..algebra.terms import Variable
from ..algebra.ucq import UnionQuery
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..core.plans import DifferenceNode, PlanNode, UnionNode, ViewScan
from ..storage.instance import Database


def schema() -> DatabaseSchema:
    return schema_from_spec(
        {
            "R": ("X", "Y", "Z"),
            "T": ("X", "Y"),
            "K1": ("X", "Y"),
            "K2": ("X", "Y"),
            "K3": ("X", "Y"),
            "K4": ("X", "Y"),
        }
    )


def access_schema() -> AccessSchema:
    return AccessSchema(
        (
            AccessConstraint("T", ("X",), ("Y",), 3),
            AccessConstraint("K1", ("X",), ("Y",), 1),
            AccessConstraint("K2", ("X",), ("Y",), 1),
            AccessConstraint("K3", ("X",), ("Y",), 1),
            AccessConstraint("K4", ("X",), ("Y",), 1),
        )
    )


def q_prime_atoms(x1, x2, x3, x4, y_prime) -> tuple[RelationAtom, ...]:
    """The sub-query ``Q'(x1, x2, x3, x4)`` of Example 6.3."""
    return (
        RelationAtom("T", (y_prime, x1)),
        RelationAtom("T", (y_prime, x2)),
        RelationAtom("T", (y_prime, x3)),
        RelationAtom("T", (y_prime, x4)),
        RelationAtom("K1", (x1, 1)),
        RelationAtom("K1", (x2, 2)),
        RelationAtom("K2", (x3, 1)),
        RelationAtom("K2", (x4, 2)),
        RelationAtom("K3", (x1, 1)),
        RelationAtom("K3", (x4, 2)),
        RelationAtom("K4", (x2, 1)),
        RelationAtom("K4", (x3, 2)),
    )


def query_q() -> ConjunctiveQuery:
    """The Boolean CQ ``Q`` of Example 6.3."""
    x, y, z1, z2, yp = (
        Variable("x"),
        Variable("y"),
        Variable("z1"),
        Variable("z2"),
        Variable("yp"),
    )
    return ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (x, y, z1)),
            RelationAtom("R", (x, y, z2)),
        )
        + q_prime_atoms(y, z1, y, z2, yp),
        name="Q63",
    )


def _v1_definition(prefix: str) -> ConjunctiveQuery:
    x, y, z1, z2, yp = (
        Variable(f"{prefix}x"),
        Variable(f"{prefix}y"),
        Variable(f"{prefix}z1"),
        Variable(f"{prefix}z2"),
        Variable(f"{prefix}yp"),
    )
    return ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (x, z1, y)),
            RelationAtom("R", (x, z2, y)),
        )
        + q_prime_atoms(z1, y, z2, y, yp),
        name=f"{prefix}V1def",
    )


def views() -> ViewSet:
    """The Boolean views V1, V2 (≡_A V1 ∧ Q) and V3 (≡_A V1 ∪ Q)."""
    v1 = View("V1", _v1_definition("a_"))
    v2 = View(
        "V2",
        ConjunctiveQuery(
            head=(),
            atoms=query_q().atoms + _v1_definition("b_").atoms,
            name="V2def",
        ),
    )
    v3 = View("V3", UnionQuery((query_q(), _v1_definition("c_")), name="V3def"))
    return ViewSet((v1, v2, v3))


def fo_plan() -> PlanNode:
    """The 5-node FO rewriting ``(V3 \\ V1) ∪ V2``."""
    return UnionNode(
        DifferenceNode(ViewScan("V3", ()), ViewScan("V1", ())), ViewScan("V2", ())
    )


def canonical_instance_of(query: ConjunctiveQuery) -> Database:
    """The query's tableau as a concrete database (variables become values)."""
    database = Database(schema())
    for relation, rows in query.tableau().facts().items():
        database.add_many(relation, rows)
    return database


def witness_instances() -> list[Database]:
    """Instances satisfying A that witness the example's containment claims."""
    v1 = views().view("V1").as_ucq().disjuncts[0]
    instances = [canonical_instance_of(query_q()), canonical_instance_of(v1)]
    combined = Database(schema())
    for database in instances:
        for name, rows in database.facts.items():
            combined.add_many(name, rows)
    if combined.satisfies(access_schema()):
        instances.append(combined)
    return instances
